//! The deterministic pseudo-random source used by the stochastic neuron modes.

use serde::{Deserialize, Serialize};

/// A 32-bit Galois linear-feedback shift register.
///
/// Neurosynaptic cores use a hardware LFSR per core rather than a software
/// RNG: every stochastic draw must be cheap, reproducible, and identical
/// between the simulator and the silicon. The taps implement the maximal
/// polynomial `x^32 + x^22 + x^2 + x + 1`, giving a period of `2^32 - 1`.
///
/// # Example
///
/// ```
/// use brainsim_neuron::Lfsr;
///
/// let mut a = Lfsr::new(42);
/// let mut b = Lfsr::new(42);
/// assert_eq!(a.next_u8(), b.next_u8()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Lfsr {
    state: u32,
}

/// Taps for the maximal-length polynomial `x^32 + x^22 + x^2 + x + 1`.
const TAPS: u32 = 0x8020_0003;

impl Lfsr {
    /// Creates an LFSR from a seed.
    ///
    /// A zero seed is remapped to a fixed non-zero constant: the all-zero
    /// state is the one fixed point of an LFSR and would never advance.
    #[inline]
    pub const fn new(seed: u32) -> Lfsr {
        let state = if seed == 0 { 0xDEAD_BEEF } else { seed };
        Lfsr { state }
    }

    /// Advances one step and returns the full 32-bit state.
    ///
    /// Branchless: the feedback bit is 50/50, so a conditional XOR would
    /// mispredict every other draw — measurable in injection-heavy
    /// workloads that draw thousands of Bernoulli samples per tick.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let lsb = self.state & 1;
        self.state = (self.state >> 1) ^ (TAPS & lsb.wrapping_neg());
        self.state
    }

    /// Draws 8 pseudo-random bits.
    ///
    /// This is the draw width used by stochastic synapse and leak modes,
    /// which compare against a weight magnitude in `0..=256`.
    #[inline]
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u32() & 0xFF) as u8
    }

    /// Draws a value masked to the low `bits` bits (`bits <= 32`).
    ///
    /// Used by the stochastic-threshold mode, where the mask width sets the
    /// amount of threshold jitter.
    #[inline]
    pub fn next_masked(&mut self, bits: u32) -> u32 {
        debug_assert!(bits <= 32);
        if bits == 0 {
            return 0;
        }
        let mask = if bits == 32 {
            u32::MAX
        } else {
            (1u32 << bits) - 1
        };
        self.next_u32() & mask
    }

    /// A Bernoulli draw: `true` with probability `numerator / 256`.
    ///
    /// `numerator` values of 256 or more always return `true`.
    #[inline]
    pub fn bernoulli_256(&mut self, numerator: u32) -> bool {
        (self.next_u8() as u32) < numerator
    }

    /// The current internal state (for snapshotting).
    #[inline]
    pub const fn state(&self) -> u32 {
        self.state
    }
}

impl Default for Lfsr {
    fn default() -> Self {
        Lfsr::new(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_remapped() {
        let mut z = Lfsr::new(0);
        // Must advance rather than sticking at zero.
        let first = z.next_u32();
        assert_ne!(first, (0xDEAD_BEEF >> 1)); // advanced
        assert_ne!(z.state(), 0);
    }

    #[test]
    fn deterministic_stream() {
        let mut a = Lfsr::new(7);
        let mut b = Lfsr::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Lfsr::new(7);
        let mut b = Lfsr::new(8);
        let same = (0..100).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 5, "streams should differ almost everywhere");
    }

    #[test]
    fn never_reaches_zero_state() {
        let mut rng = Lfsr::new(123);
        for _ in 0..100_000 {
            assert_ne!(rng.next_u32(), 0);
        }
    }

    #[test]
    fn u8_draws_cover_range_roughly_uniformly() {
        let mut rng = Lfsr::new(99);
        let mut histogram = [0u32; 256];
        let draws = 256 * 400;
        for _ in 0..draws {
            histogram[rng.next_u8() as usize] += 1;
        }
        let expected = draws as f64 / 256.0;
        for (value, &count) in histogram.iter().enumerate() {
            let ratio = count as f64 / expected;
            assert!(
                (0.5..2.0).contains(&ratio),
                "value {value} count {count} far from expected {expected}"
            );
        }
    }

    #[test]
    fn bernoulli_probability_matches_numerator() {
        let mut rng = Lfsr::new(5);
        let trials = 100_000;
        let hits = (0..trials).filter(|_| rng.bernoulli_256(64)).count();
        let p = hits as f64 / trials as f64;
        assert!((p - 0.25).abs() < 0.02, "p = {p}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Lfsr::new(5);
        assert!(!(0..1000).any(|_| rng.bernoulli_256(0)));
        assert!((0..1000).all(|_| rng.bernoulli_256(256)));
    }

    #[test]
    fn masked_draw_respects_mask() {
        let mut rng = Lfsr::new(17);
        for _ in 0..1000 {
            assert!(rng.next_masked(4) < 16);
        }
        assert_eq!(rng.next_masked(0), 0);
    }
}
