//! Axon types and the signed 9-bit synaptic weight.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Number of axon types supported by a neurosynaptic core.
pub const AXON_TYPES: usize = 4;

/// The type tag carried by every axon entering a core.
///
/// A neuron does not store a weight per synapse; it stores one [`Weight`] per
/// axon *type*. The weight applied when axon `j` drives neuron `i` is
/// `i`'s weight for `j`'s type. Four types per core is the silicon budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum AxonType {
    /// Axon type 0 (conventionally the strongest excitatory class).
    A0 = 0,
    /// Axon type 1.
    A1 = 1,
    /// Axon type 2.
    A2 = 2,
    /// Axon type 3 (conventionally the inhibitory class).
    A3 = 3,
}

impl AxonType {
    /// All axon types, in index order.
    pub const ALL: [AxonType; AXON_TYPES] =
        [AxonType::A0, AxonType::A1, AxonType::A2, AxonType::A3];

    /// The array index of this type, in `0..AXON_TYPES`.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Builds an axon type from its index.
    ///
    /// Returns `None` if `index >= AXON_TYPES`.
    #[inline]
    pub const fn from_index(index: usize) -> Option<AxonType> {
        match index {
            0 => Some(AxonType::A0),
            1 => Some(AxonType::A1),
            2 => Some(AxonType::A2),
            3 => Some(AxonType::A3),
            _ => None,
        }
    }
}

impl fmt::Display for AxonType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "G{}", self.index())
    }
}

/// Error returned when a raw value does not fit the signed 9-bit weight field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightError {
    value: i32,
}

impl fmt::Display for WeightError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "weight {} outside signed 9-bit range [{}, {}]",
            self.value,
            Weight::MIN.value(),
            Weight::MAX.value()
        )
    }
}

impl std::error::Error for WeightError {}

/// A signed 9-bit synaptic weight, the silicon weight field.
///
/// Valid range is `[-256, 255]`. In deterministic mode the weight is added to
/// the membrane potential directly; in stochastic mode its magnitude is the
/// firing probability numerator (out of 256) and only the sign is added.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(try_from = "i32", into = "i32")]
pub struct Weight(i16);

impl Weight {
    /// The smallest representable weight, `-256`.
    pub const MIN: Weight = Weight(-256);
    /// The largest representable weight, `255`.
    pub const MAX: Weight = Weight(255);
    /// The zero weight.
    pub const ZERO: Weight = Weight(0);

    /// Creates a weight, validating the signed 9-bit range.
    ///
    /// # Errors
    ///
    /// Returns [`WeightError`] if `value` is outside `[-256, 255]`.
    #[inline]
    pub const fn new(value: i32) -> Result<Weight, WeightError> {
        if value < Weight::MIN.0 as i32 || value > Weight::MAX.0 as i32 {
            Err(WeightError { value })
        } else {
            Ok(Weight(value as i16))
        }
    }

    /// Creates a weight, clamping out-of-range values to the representable range.
    #[inline]
    pub const fn saturating(value: i32) -> Weight {
        if value < Weight::MIN.0 as i32 {
            Weight::MIN
        } else if value > Weight::MAX.0 as i32 {
            Weight::MAX
        } else {
            Weight(value as i16)
        }
    }

    /// The raw signed value.
    #[inline]
    pub const fn value(self) -> i32 {
        self.0 as i32
    }

    /// The magnitude of the weight, used as the stochastic firing probability
    /// numerator (out of 256).
    #[inline]
    pub const fn magnitude(self) -> u32 {
        self.0.unsigned_abs() as u32
    }

    /// `-1`, `0` or `1` depending on the weight sign.
    #[inline]
    pub const fn signum(self) -> i32 {
        self.0.signum() as i32
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl TryFrom<i32> for Weight {
    type Error = WeightError;

    fn try_from(value: i32) -> Result<Self, Self::Error> {
        Weight::new(value)
    }
}

impl From<Weight> for i32 {
    fn from(w: Weight) -> i32 {
        w.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axon_type_index_round_trip() {
        for ty in AxonType::ALL {
            assert_eq!(AxonType::from_index(ty.index()), Some(ty));
        }
        assert_eq!(AxonType::from_index(4), None);
    }

    #[test]
    fn axon_type_display() {
        assert_eq!(AxonType::A2.to_string(), "G2");
    }

    #[test]
    fn weight_range_is_signed_9_bit() {
        assert!(Weight::new(-256).is_ok());
        assert!(Weight::new(255).is_ok());
        assert!(Weight::new(-257).is_err());
        assert!(Weight::new(256).is_err());
    }

    #[test]
    fn weight_saturating_clamps() {
        assert_eq!(Weight::saturating(1000), Weight::MAX);
        assert_eq!(Weight::saturating(-1000), Weight::MIN);
        assert_eq!(Weight::saturating(7).value(), 7);
    }

    #[test]
    fn weight_magnitude_and_signum() {
        let w = Weight::new(-12).unwrap();
        assert_eq!(w.magnitude(), 12);
        assert_eq!(w.signum(), -1);
        assert_eq!(Weight::ZERO.signum(), 0);
        assert_eq!(Weight::MIN.magnitude(), 256);
    }

    #[test]
    fn weight_error_message_mentions_range() {
        let err = Weight::new(300).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("300"), "{msg}");
        assert!(msg.contains("-256"), "{msg}");
    }
}
