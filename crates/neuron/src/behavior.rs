//! The canonical spiking-behaviour catalogue.
//!
//! A defining claim of the TrueNorth-lineage neuron is that one integer
//! parameterisation — sometimes with one or two helper neurons and axonal
//! delays, exactly as deployed on the silicon — reproduces the canonical
//! repertoire of biological spiking behaviours. This module realises that
//! repertoire on top of [`crate::micro::MicroNet`]: each function builds its
//! circuit, drives it with the prescribed stimulus, and *checks* the
//! qualitative signature, returning a [`BehaviorResult`].
//!
//! [`run_all`] powers the reconstructed figure **F1** and the behaviour test
//! suite.

use crate::config::NeuronConfig;
use crate::micro::{MicroNet, Source};
use crate::presets;
use crate::weight::{AxonType, Weight};

/// The outcome of one behaviour experiment.
#[derive(Debug, Clone)]
pub struct BehaviorResult {
    /// Behaviour name, e.g. `"tonic spiking"`.
    pub name: &'static str,
    /// One-line description of the circuit and stimulus.
    pub description: &'static str,
    /// Spike raster of the observed neuron.
    pub raster: Raster,
    /// Whether the qualitative signature was achieved.
    pub achieved: bool,
    /// Human-readable summary of the measured signature.
    pub metric: String,
}

/// A recorded spike train with basic statistics.
#[derive(Debug, Clone, Default)]
pub struct Raster {
    spikes: Vec<bool>,
}

impl Raster {
    /// Wraps a boolean spike train.
    pub fn new(spikes: Vec<bool>) -> Raster {
        Raster { spikes }
    }

    /// Ticks at which spikes occurred.
    pub fn spike_times(&self) -> Vec<u64> {
        self.spikes
            .iter()
            .enumerate()
            .filter_map(|(t, &s)| s.then_some(t as u64))
            .collect()
    }

    /// Total number of spikes.
    pub fn count(&self) -> usize {
        self.spikes.iter().filter(|&&s| s).count()
    }

    /// Number of spikes in `[from, to)`.
    pub fn count_in(&self, from: u64, to: u64) -> usize {
        self.spike_times()
            .into_iter()
            .filter(|&t| t >= from && t < to)
            .count()
    }

    /// Inter-spike intervals.
    pub fn isis(&self) -> Vec<u64> {
        self.spike_times().windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Mean inter-spike interval, if at least two spikes exist.
    pub fn mean_isi(&self) -> Option<f64> {
        let isis = self.isis();
        if isis.is_empty() {
            None
        } else {
            Some(isis.iter().sum::<u64>() as f64 / isis.len() as f64)
        }
    }

    /// Coefficient of variation of the ISIs (0 for perfectly regular trains).
    pub fn isi_cv(&self) -> Option<f64> {
        let isis = self.isis();
        if isis.len() < 2 {
            return None;
        }
        let mean = isis.iter().sum::<u64>() as f64 / isis.len() as f64;
        let var = isis.iter().map(|&i| (i as f64 - mean).powi(2)).sum::<f64>() / isis.len() as f64;
        Some(var.sqrt() / mean)
    }

    /// Lengths of maximal runs of consecutive-tick spikes (bursts).
    pub fn burst_lengths(&self) -> Vec<usize> {
        let mut runs = Vec::new();
        let mut current = 0usize;
        let mut last: Option<u64> = None;
        for t in self.spike_times() {
            match last {
                Some(prev) if t == prev + 1 => current += 1,
                _ => {
                    if current > 0 {
                        runs.push(current);
                    }
                    current = 1;
                }
            }
            last = Some(t);
        }
        if current > 0 {
            runs.push(current);
        }
        runs
    }

    /// Length of the raster in ticks.
    pub fn len(&self) -> usize {
        self.spikes.len()
    }

    /// Whether the raster is empty.
    pub fn is_empty(&self) -> bool {
        self.spikes.is_empty()
    }

    /// A compact ASCII rendering (`|` spike, `.` silence), at most 80 columns.
    pub fn ascii(&self) -> String {
        self.spikes
            .iter()
            .take(80)
            .map(|&s| if s { '|' } else { '.' })
            .collect()
    }
}

fn result(
    name: &'static str,
    description: &'static str,
    raster: Vec<bool>,
    achieved: bool,
    metric: String,
) -> BehaviorResult {
    BehaviorResult {
        name,
        description,
        raster: Raster::new(raster),
        achieved,
        metric,
    }
}

/// Behaviour 1 — Tonic spiking: constant drive → perfectly regular firing.
pub fn tonic_spiking() -> BehaviorResult {
    let mut net = MicroNet::new(1);
    let n = net.add_neuron(presets::relay(5, 20));
    net.connect(Source::External(0), n, AxonType::A0, 1)
        .expect("static behaviour circuit is valid");
    let raster = net.run(200, n, |_| vec![true]);
    let r = Raster::new(raster.clone());
    let regular = r.isi_cv().map(|cv| cv < 1e-9).unwrap_or(false);
    let achieved = r.count() >= 40 && regular;
    let metric = format!(
        "{} spikes, CV {:.3}",
        r.count(),
        r.isi_cv().unwrap_or(f64::NAN)
    );
    result(
        "tonic spiking",
        "relay neuron, constant 1 spike/tick drive",
        raster,
        achieved,
        metric,
    )
}

/// Behaviour 2 — Integrator: coincident inputs fire, temporally separated ones decay away.
pub fn integrator() -> BehaviorResult {
    let mut net = MicroNet::new(2);
    let n = net.add_neuron(presets::leaky_integrator(5, 8, 2));
    net.connect(Source::External(0), n, AxonType::A0, 1)
        .expect("static behaviour circuit is valid");
    net.connect(Source::External(1), n, AxonType::A0, 1)
        .expect("static behaviour circuit is valid");
    let raster = net.run(60, n, |t| match t {
        10 => vec![true, true],  // coincident pair
        30 => vec![true, false], // separated pair
        32 => vec![false, true],
        _ => vec![false, false],
    });
    let r = Raster::new(raster.clone());
    let achieved = r.count_in(10, 14) == 1 && r.count_in(29, 45) == 0;
    let metric = format!(
        "coincident→{} spike(s), separated→{}",
        r.count_in(10, 14),
        r.count_in(29, 45)
    );
    result(
        "integrator",
        "leaky integrator; fires for coincident, not separated, input pairs",
        raster,
        achieved,
        metric,
    )
}

/// Behaviour 3 — Phasic spiking: one spike at stimulus onset, then silence under
/// sustained drive (delayed feed-forward inhibition cancels the input).
pub fn phasic_spiking() -> BehaviorResult {
    let mut net = MicroNet::new(1);
    let n = net.add_neuron(presets::relay(5, 12));
    net.connect(Source::External(0), n, AxonType::A0, 1)
        .expect("static behaviour circuit is valid");
    net.connect(Source::External(0), n, AxonType::A3, 5)
        .expect("static behaviour circuit is valid");
    let raster = net.run(100, n, |_| vec![true]);
    let r = Raster::new(raster.clone());
    let achieved = r.count() == 1 && r.count_in(0, 8) == 1;
    let metric = format!(
        "{} spike(s), first at {:?}",
        r.count(),
        r.spike_times().first()
    );
    result(
        "phasic spiking",
        "excitation (delay 1) + matched inhibition (delay 5) from the same drive",
        raster,
        achieved,
        metric,
    )
}

/// Behaviour 4 — Phasic bursting: a short onset burst, then silence.
pub fn phasic_bursting() -> BehaviorResult {
    let mut net = MicroNet::new(1);
    let n = net.add_neuron(presets::relay(5, 4));
    net.connect(Source::External(0), n, AxonType::A0, 1)
        .expect("static behaviour circuit is valid");
    net.connect(Source::External(0), n, AxonType::A3, 5)
        .expect("static behaviour circuit is valid");
    let raster = net.run(100, n, |_| vec![true]);
    let r = Raster::new(raster.clone());
    let achieved = (3..=6).contains(&r.count()) && r.count_in(8, 100) == 0;
    let metric = format!("burst of {} then silence", r.count());
    result(
        "phasic bursting",
        "as phasic spiking with a low threshold: onset burst only",
        raster,
        achieved,
        metric,
    )
}

/// Behaviour 5 — Tonic bursting: recurring bursts separated by quiet gaps, produced by a
/// slow inhibitory integrator with a multi-delay inhibition volley.
pub fn tonic_bursting() -> BehaviorResult {
    let mut net = MicroNet::new(1);
    let e = net.add_neuron(
        NeuronConfig::builder()
            .weight(AxonType::A0, Weight::saturating(5))
            .weight(AxonType::A3, Weight::saturating(-100))
            .threshold(4)
            .negative_threshold(0)
            .build()
            .expect("static behaviour circuit is valid"),
    );
    let i = net.add_neuron(
        NeuronConfig::builder()
            .weight(AxonType::A0, Weight::saturating(2))
            .threshold(7)
            .build()
            .expect("static behaviour circuit is valid"),
    );
    net.connect(Source::External(0), e, AxonType::A0, 1)
        .expect("static behaviour circuit is valid");
    net.connect(Source::Neuron(e), i, AxonType::A0, 1)
        .expect("static behaviour circuit is valid");
    for delay in 1..=6 {
        net.connect(Source::Neuron(i), e, AxonType::A3, delay)
            .expect("static behaviour circuit is valid");
    }
    let raster = net.run(120, e, |_| vec![true]);
    let r = Raster::new(raster.clone());
    let bursts = r.burst_lengths();
    let long_bursts = bursts.iter().filter(|&&b| b >= 3).count();
    let has_gaps = r.isis().iter().any(|&g| g >= 4);
    let achieved = long_bursts >= 3 && has_gaps && r.count() >= 12;
    let metric = format!("{} bursts (lengths {:?})", bursts.len(), bursts);
    result(
        "tonic bursting",
        "slow inhibitory integrator fires a 6-tick inhibition volley after every 4th spike",
        raster,
        achieved,
        metric,
    )
}

/// Behaviour 6 — Spike-frequency adaptation: the firing rate declines under constant
/// drive as latch interneurons accumulate and add persistent inhibition.
pub fn spike_frequency_adaptation() -> BehaviorResult {
    let mut net = MicroNet::new(1);
    let e = net.add_neuron(
        NeuronConfig::builder()
            .weight(AxonType::A0, Weight::saturating(6))
            .weight(AxonType::A3, Weight::saturating(-2))
            .threshold(12)
            .negative_threshold(0)
            .build()
            .expect("static behaviour circuit is valid"),
    );
    let i1 = net.add_neuron(presets::latch(1, 4));
    let i2 = net.add_neuron(presets::latch(1, 8));
    net.connect(Source::External(0), e, AxonType::A0, 1)
        .expect("static behaviour circuit is valid");
    net.connect(Source::Neuron(e), i1, AxonType::A0, 1)
        .expect("static behaviour circuit is valid");
    net.connect(Source::Neuron(e), i2, AxonType::A0, 1)
        .expect("static behaviour circuit is valid");
    net.connect(Source::Neuron(i1), e, AxonType::A3, 1)
        .expect("static behaviour circuit is valid");
    net.connect(Source::Neuron(i2), e, AxonType::A3, 1)
        .expect("static behaviour circuit is valid");
    let raster = net.run(150, e, |_| vec![true]);
    let r = Raster::new(raster.clone());
    let isis = r.isis();
    let achieved = isis.len() >= 6 && {
        let head: f64 = isis[..3].iter().sum::<u64>() as f64 / 3.0;
        let tail: f64 = isis[isis.len() - 3..].iter().sum::<u64>() as f64 / 3.0;
        tail > head && r.count_in(100, 150) > 0
    };
    let metric = format!("ISIs {:?}", &isis[..isis.len().min(10)]);
    result(
        "spike-frequency adaptation",
        "latch interneurons accumulate spikes and add stepwise persistent inhibition",
        raster,
        achieved,
        metric,
    )
}

fn rate_with_drive(
    config: &NeuronConfig,
    self_excite: Option<i32>,
    drive: usize,
    ticks: u64,
) -> f64 {
    let mut net = MicroNet::new(drive.max(1));
    let n = net.add_neuron(config.clone());
    for c in 0..drive {
        net.connect(Source::External(c), n, AxonType::A0, 1)
            .expect("static behaviour circuit is valid");
    }
    if let Some(w) = self_excite {
        // Self-excitation uses axon type A1.
        let mut cfg = config.clone();
        cfg.weights[AxonType::A1.index()] = Weight::saturating(w);
        // Rebuild the net with the updated config.
        let mut net2 = MicroNet::new(drive.max(1));
        let n2 = net2.add_neuron(cfg);
        for c in 0..drive {
            net2.connect(Source::External(c), n2, AxonType::A0, 1)
                .expect("static behaviour circuit is valid");
        }
        net2.connect(Source::Neuron(n2), n2, AxonType::A1, 1)
            .expect("static behaviour circuit is valid");
        let raster = net2.run(ticks, n2, |_| vec![true; drive.max(1)]);
        return Raster::new(raster).count() as f64 / ticks as f64;
    }
    let raster = net.run(ticks, n, |_| vec![true; drive.max(1)]);
    Raster::new(raster).count() as f64 / ticks as f64
}

/// Behaviour 7 — Class-1 excitability: firing rate proportional to drive strength,
/// starting from arbitrarily low rates.
pub fn class_1_excitable() -> BehaviorResult {
    let config = presets::rate_divider(64);
    let r16 = rate_with_drive(&config, None, 16, 640);
    let r32 = rate_with_drive(&config, None, 32, 640);
    let r64 = rate_with_drive(&config, None, 64, 640);
    let prop = (r32 / r16 - 2.0).abs() < 0.3 && (r64 / r32 - 2.0).abs() < 0.3;
    let achieved = prop && r16 > 0.0;
    let metric = format!("rates {r16:.3}/{r32:.3}/{r64:.3} for drives 16/32/64");
    result(
        "class-1 excitable",
        "linear-reset integrator: rate = drive/threshold, continuous from zero",
        Vec::new(),
        achieved,
        metric,
    )
}

/// Behaviour 8 — Class-2 excitability: no firing below an onset drive, then an abruptly
/// high rate at onset (self-excitation creates the jump).
pub fn class_2_excitable() -> BehaviorResult {
    let config = NeuronConfig::builder()
        .weight(AxonType::A0, Weight::saturating(1))
        .threshold(12)
        .build()
        .expect("static behaviour circuit is valid");
    let r0 = rate_with_drive(&config, Some(6), 0, 600);
    let r1 = rate_with_drive(&config, Some(6), 1, 600);
    let r2 = rate_with_drive(&config, Some(6), 2, 600);
    let achieved = r0 == 0.0 && r1 >= 0.12 && r2 > r1;
    let metric = format!("rates {r0:.3}/{r1:.3}/{r2:.3} for drives 0/1/2 (onset jump)");
    result(
        "class-2 excitable",
        "self-excitation sustains a high minimum rate once firing starts",
        Vec::new(),
        achieved,
        metric,
    )
}

/// Behaviour 9 — Spike latency: a brief subthreshold kick produces a delayed single
/// spike; stronger kicks fire sooner (positive leak-reversal self-drive).
pub fn spike_latency() -> BehaviorResult {
    let mut net = MicroNet::new(5);
    let config = NeuronConfig::builder()
        .weight(AxonType::A0, Weight::saturating(1))
        .leak(1)
        .leak_reversal(true)
        .threshold(10)
        .build()
        .expect("static behaviour circuit is valid");
    let n = net.add_neuron(config);
    for c in 0..5 {
        net.connect(Source::External(c), n, AxonType::A0, 1)
            .expect("static behaviour circuit is valid");
    }
    let raster = net.run(240, n, |t| match t {
        20 => vec![true, true, false, false, false], // kick of 2
        120 => vec![true, true, true, true, true],   // kick of 5
        _ => vec![false; 5],
    });
    let r = Raster::new(raster.clone());
    let times = r.spike_times();
    let achieved = times.len() == 2 && {
        let lat1 = times[0] as i64 - 20;
        let lat2 = times[1] as i64 - 120;
        lat1 >= 5 && lat2 >= 2 && lat2 < lat1
    };
    let metric = format!("spike times {times:?} for kicks at 20 (s=2) and 120 (s=5)");
    result(
        "spike latency",
        "a subthreshold kick arms a divergent leak; latency shrinks with kick size",
        raster,
        achieved,
        metric,
    )
}

/// Behaviour 10 — Resonator: fires only when an input pulse pair matches the delay
/// difference of its two synapses.
pub fn resonator() -> BehaviorResult {
    let mut net = MicroNet::new(1);
    let n = net.add_neuron(presets::leaky_integrator(5, 5, 5));
    net.connect(Source::External(0), n, AxonType::A0, 1)
        .expect("static behaviour circuit is valid");
    net.connect(Source::External(0), n, AxonType::A0, 6)
        .expect("static behaviour circuit is valid");
    let raster = net.run(120, n, |t| {
        // Resonant pair spaced 5 apart; off-resonance pairs spaced 2 and 8.
        vec![matches!(t, 10 | 15 | 50 | 52 | 90 | 98)]
    });
    let r = Raster::new(raster.clone());
    let achieved = r.count_in(14, 20) == 1 && r.count_in(48, 65) == 0 && r.count_in(88, 110) == 0;
    let metric = format!(
        "resonant→{}, interval-2→{}, interval-8→{}",
        r.count_in(14, 20),
        r.count_in(48, 65),
        r.count_in(88, 110)
    );
    result(
        "resonator",
        "two synapses (delays 1 and 6) make a coincidence window tuned to interval 5",
        raster,
        achieved,
        metric,
    )
}

/// Behaviour 11 — Rebound spiking: spikes after the release of inhibition
/// (disinhibition of a tonically suppressed neuron).
pub fn rebound_spike() -> BehaviorResult {
    let mut net = MicroNet::new(1);
    let e = net.add_neuron(
        NeuronConfig::builder()
            .weight(AxonType::A3, Weight::saturating(-8))
            .leak(2)
            .threshold(8)
            .negative_threshold(0)
            .build()
            .expect("static behaviour circuit is valid"),
    );
    let i = net.add_neuron(
        NeuronConfig::builder()
            .weight(AxonType::A3, Weight::saturating(-120))
            .leak(8)
            .threshold(8)
            .negative_threshold(150)
            .build()
            .expect("static behaviour circuit is valid"),
    );
    net.connect(Source::Neuron(i), e, AxonType::A3, 1)
        .expect("static behaviour circuit is valid");
    net.connect(Source::External(0), i, AxonType::A3, 1)
        .expect("static behaviour circuit is valid");
    let raster = net.run(120, e, |t| vec![t == 50]);
    let r = Raster::new(raster.clone());
    let achieved = r.count_in(20, 50) == 0 && r.count_in(51, 72) >= 2 && r.count_in(85, 120) == 0;
    let metric = format!(
        "pre {}, rebound {}, post {}",
        r.count_in(20, 50),
        r.count_in(51, 72),
        r.count_in(85, 120)
    );
    result(
        "rebound spiking",
        "an inhibitory pulse silences the suppressor; the target fires during release",
        raster,
        achieved,
        metric,
    )
}

/// Behaviour 12 — Threshold variability: with a stochastic threshold the same input
/// sometimes fires and sometimes does not.
pub fn threshold_variability() -> BehaviorResult {
    let mut net = MicroNet::new(1);
    let config = NeuronConfig::builder()
        .weight(AxonType::A0, Weight::saturating(12))
        .leak(-4)
        .leak_reversal(true)
        .threshold(4)
        .threshold_mask_bits(4)
        .negative_threshold(0)
        .build()
        .expect("static behaviour circuit is valid");
    let n = net.add_neuron(config);
    net.connect(Source::External(0), n, AxonType::A0, 1)
        .expect("static behaviour circuit is valid");
    let presentations = 60u64;
    let raster = net.run(presentations * 10, n, |t| vec![t % 10 == 0]);
    let r = Raster::new(raster.clone());
    let responses = (0..presentations)
        .filter(|p| r.count_in(p * 10 + 1, p * 10 + 5) > 0)
        .count();
    let fraction = responses as f64 / presentations as f64;
    let achieved = (0.1..0.7).contains(&fraction);
    let metric = format!("response fraction {fraction:.2} over {presentations} identical pulses");
    result(
        "threshold variability",
        "stochastic threshold (4-bit jitter) makes identical pulses fire probabilistically",
        raster,
        achieved,
        metric,
    )
}

/// Behaviour 13 — Bistability: an excitatory pulse switches persistent firing on; an
/// inhibitory pulse switches it off (self-excitatory latch).
pub fn bistability() -> BehaviorResult {
    let mut net = MicroNet::new(2);
    let config = NeuronConfig::builder()
        .weight(AxonType::A0, Weight::saturating(10))
        .weight(AxonType::A1, Weight::saturating(10))
        .weight(AxonType::A3, Weight::saturating(-30))
        .threshold(10)
        .negative_threshold(0)
        .build()
        .expect("static behaviour circuit is valid");
    let n = net.add_neuron(config);
    net.connect(Source::External(0), n, AxonType::A0, 1)
        .expect("static behaviour circuit is valid");
    net.connect(Source::External(1), n, AxonType::A3, 1)
        .expect("static behaviour circuit is valid");
    net.connect(Source::Neuron(n), n, AxonType::A1, 1)
        .expect("static behaviour circuit is valid");
    let raster = net.run(100, n, |t| vec![t == 20, t == 60]);
    let r = Raster::new(raster.clone());
    let achieved = r.count_in(0, 20) == 0 && r.count_in(25, 60) == 35 && r.count_in(65, 100) == 0;
    let metric = format!(
        "off {}, on {}, off {}",
        r.count_in(0, 20),
        r.count_in(25, 60),
        r.count_in(65, 100)
    );
    result(
        "bistability",
        "self-excitatory latch: pulse on at t=20, pulse off at t=60",
        raster,
        achieved,
        metric,
    )
}

/// Behaviour 14 — Accommodation: a slow ramp delivering N units never fires; the same N
/// units delivered at once do.
pub fn accommodation() -> BehaviorResult {
    let mut net = MicroNet::new(8);
    let n = net.add_neuron(presets::leaky_integrator(1, 6, 2));
    for c in 0..8 {
        net.connect(Source::External(c), n, AxonType::A0, 1)
            .expect("static behaviour circuit is valid");
    }
    let raster = net.run(100, n, |t| {
        if (10..26).contains(&t) {
            // Ramp: one unit per tick, 16 units total.
            let mut v = vec![false; 8];
            v[0] = true;
            v
        } else if t == 60 {
            vec![true; 8] // Step: 8 units at once.
        } else {
            vec![false; 8]
        }
    });
    let r = Raster::new(raster.clone());
    let achieved = r.count_in(0, 59) == 0 && r.count_in(59, 64) == 1;
    let metric = format!(
        "ramp→{} spikes, step→{}",
        r.count_in(0, 59),
        r.count_in(59, 64)
    );
    result(
        "accommodation",
        "leaky integration ignores a slow ramp but fires for the same charge as a step",
        raster,
        achieved,
        metric,
    )
}

/// Behaviour 15 — Inhibition-induced spiking: the observed neuron fires only while an
/// external *inhibitory* drive is present (it silences a tonic suppressor).
pub fn inhibition_induced_spiking() -> BehaviorResult {
    let mut net = MicroNet::new(1);
    let e = net.add_neuron(
        NeuronConfig::builder()
            .weight(AxonType::A3, Weight::saturating(-8))
            .leak(4)
            .threshold(8)
            .negative_threshold(0)
            .build()
            .expect("static behaviour circuit is valid"),
    );
    let g = net.add_neuron(
        NeuronConfig::builder()
            .weight(AxonType::A3, Weight::saturating(-16))
            .leak(8)
            .threshold(8)
            .negative_threshold(0)
            .build()
            .expect("static behaviour circuit is valid"),
    );
    net.connect(Source::Neuron(g), e, AxonType::A3, 1)
        .expect("static behaviour circuit is valid");
    net.connect(Source::External(0), g, AxonType::A3, 1)
        .expect("static behaviour circuit is valid");
    let raster = net.run(120, e, |t| vec![(40..80).contains(&t)]);
    let r = Raster::new(raster.clone());
    let achieved = r.count_in(10, 41) == 0 && r.count_in(42, 80) >= 10 && r.count_in(90, 120) == 0;
    let metric = format!(
        "before {}, during inhibition {}, after {}",
        r.count_in(10, 41),
        r.count_in(42, 80),
        r.count_in(90, 120)
    );
    result(
        "inhibition-induced spiking",
        "inhibitory drive silences a tonic suppressor, releasing the observed neuron",
        raster,
        achieved,
        metric,
    )
}

/// Behaviour 16 — Spontaneous (stochastic) firing: irregular spikes with no input at all.
pub fn spontaneous_firing() -> BehaviorResult {
    let mut net = MicroNet::new(1);
    net.seed(0xBEE5);
    let n = net.add_neuron(presets::spontaneous(64, 2));
    let raster = net.run(400, n, |_| vec![false]);
    let r = Raster::new(raster.clone());
    let cv = r.isi_cv().unwrap_or(0.0);
    let achieved = r.count() >= 15 && cv >= 0.25;
    let metric = format!("{} spontaneous spikes, ISI CV {cv:.2}", r.count());
    result(
        "spontaneous firing",
        "stochastic leak as an internal noise source; no external input",
        raster,
        achieved,
        metric,
    )
}

/// Behaviour 17 — Irregular spiking: constant drive through stochastic synapses yields
/// an irregular (high-CV) spike train.
pub fn irregular_spiking() -> BehaviorResult {
    let mut net = MicroNet::new(1);
    net.seed(0xACE1);
    let config = NeuronConfig::builder()
        .weight(AxonType::A0, Weight::saturating(96))
        .stochastic_synapse(AxonType::A0, true)
        .threshold(2)
        .build()
        .expect("static behaviour circuit is valid");
    let n = net.add_neuron(config);
    net.connect(Source::External(0), n, AxonType::A0, 1)
        .expect("static behaviour circuit is valid");
    let raster = net.run(400, n, |_| vec![true]);
    let r = Raster::new(raster.clone());
    let cv = r.isi_cv().unwrap_or(0.0);
    let achieved = r.count() >= 30 && cv >= 0.25;
    let metric = format!("{} spikes under constant drive, ISI CV {cv:.2}", r.count());
    result(
        "irregular spiking",
        "stochastic synapse turns a regular drive into an irregular train",
        raster,
        achieved,
        metric,
    )
}

/// Behaviour 18 — Depolarising after-potential: resetting *above* rest shortens the
/// post-spike ISI relative to the initial latency.
pub fn depolarizing_after_potential() -> BehaviorResult {
    let mut net = MicroNet::new(1);
    let config = NeuronConfig::builder()
        .weight(AxonType::A0, Weight::saturating(4))
        .threshold(10)
        .reset_potential(6)
        .build()
        .expect("static behaviour circuit is valid");
    let n = net.add_neuron(config);
    net.connect(Source::External(0), n, AxonType::A0, 1)
        .expect("static behaviour circuit is valid");
    let raster = net.run(60, n, |_| vec![true]);
    let r = Raster::new(raster.clone());
    let times = r.spike_times();
    let achieved = !times.is_empty()
        && r.mean_isi()
            .map(|isi| (times[0] as f64) > isi)
            .unwrap_or(false);
    let metric = format!(
        "first latency {:?}, mean ISI {:?}",
        times.first(),
        r.mean_isi()
    );
    result(
        "depolarising after-potential",
        "reset above rest (R=6): subsequent ISIs shorter than the initial latency",
        raster,
        achieved,
        metric,
    )
}

/// Behaviour 19 — Mixed mode: an onset burst followed by sustained slower tonic firing
/// (partial delayed inhibition).
pub fn mixed_mode() -> BehaviorResult {
    let mut net = MicroNet::new(1);
    let config = NeuronConfig::builder()
        .weight(AxonType::A0, Weight::saturating(6))
        .weight(AxonType::A3, Weight::saturating(-4))
        .threshold(6)
        .negative_threshold(0)
        .build()
        .expect("static behaviour circuit is valid");
    let n = net.add_neuron(config);
    net.connect(Source::External(0), n, AxonType::A0, 1)
        .expect("static behaviour circuit is valid");
    net.connect(Source::External(0), n, AxonType::A3, 6)
        .expect("static behaviour circuit is valid");
    let raster = net.run(120, n, |_| vec![true]);
    let r = Raster::new(raster.clone());
    let onset_burst = r.count_in(0, 6) >= 4;
    let late_times: Vec<u64> = r.spike_times().into_iter().filter(|&t| t >= 10).collect();
    let late_sparse = late_times.windows(2).all(|w| w[1] - w[0] >= 2);
    let achieved = onset_burst && late_sparse && r.count_in(60, 120) >= 5;
    let metric = format!(
        "onset burst {}, late spikes {} (all ISIs ≥ 2: {late_sparse})",
        r.count_in(0, 6),
        r.count_in(60, 120)
    );
    result(
        "mixed mode",
        "full drive at onset, partially cancelled by delayed inhibition afterwards",
        raster,
        achieved,
        metric,
    )
}

/// Runs the complete behaviour catalogue.
pub fn run_all() -> Vec<BehaviorResult> {
    vec![
        tonic_spiking(),
        integrator(),
        phasic_spiking(),
        phasic_bursting(),
        tonic_bursting(),
        spike_frequency_adaptation(),
        class_1_excitable(),
        class_2_excitable(),
        spike_latency(),
        resonator(),
        rebound_spike(),
        threshold_variability(),
        bistability(),
        accommodation(),
        inhibition_induced_spiking(),
        spontaneous_firing(),
        irregular_spiking(),
        depolarizing_after_potential(),
        mixed_mode(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raster_stats() {
        let r = Raster::new(vec![false, true, false, false, true, true, true, false]);
        assert_eq!(r.count(), 4);
        assert_eq!(r.spike_times(), vec![1, 4, 5, 6]);
        assert_eq!(r.isis(), vec![3, 1, 1]);
        assert_eq!(r.burst_lengths(), vec![1, 3]);
        assert!(r.mean_isi().expect("static behaviour circuit is valid") > 1.0);
        assert_eq!(r.count_in(4, 7), 3);
    }

    #[test]
    fn raster_ascii_marks_spikes() {
        let r = Raster::new(vec![true, false, true]);
        assert_eq!(r.ascii(), "|.|");
    }

    #[test]
    fn all_behaviors_achieved() {
        for b in run_all() {
            assert!(
                b.achieved,
                "behaviour '{}' failed: {} | raster: {}",
                b.name,
                b.metric,
                b.raster.ascii()
            );
        }
    }

    #[test]
    fn catalogue_is_complete() {
        assert_eq!(run_all().len(), 19);
    }
}
