//! # brainsim-neuron
//!
//! The digital neuron model at the heart of a TrueNorth-class neurosynaptic
//! core: an *augmented leaky integrate-and-fire* neuron evaluated once per
//! global 1 ms tick, using only integer arithmetic so that software and
//! silicon are one-to-one.
//!
//! The model extends plain LIF with:
//!
//! * **Axon-type weight sharing** — each incoming axon carries one of four
//!   *axon types*; each neuron holds a signed 9-bit weight per type
//!   ([`Weight`], [`AxonType`]). This is what lets a 256×256 binary crossbar
//!   stand in for a full weight matrix.
//! * **Stochastic modes** — synaptic integration, leak and threshold can each
//!   be made stochastic, driven by a deterministic per-core LFSR ([`Lfsr`]).
//! * **Configurable leak** — signed leak with an optional *leak-reversal*
//!   flag that makes the leak direction follow the sign of the membrane
//!   potential (decay toward, or divergence away from, zero).
//! * **Three reset modes and a negative threshold** — see [`ResetMode`] and
//!   [`NegativeThresholdMode`].
//!
//! A single parameterisation of this neuron, optionally combined with one or
//! two helper neurons and axonal delays, reproduces the canonical set of
//! biological spiking behaviours; see the [`behavior`] module.
//!
//! ## Example
//!
//! ```
//! use brainsim_neuron::{AxonType, Lfsr, Neuron, NeuronConfig, Weight};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = NeuronConfig::builder()
//!     .weight(AxonType::A0, Weight::new(5)?)
//!     .threshold(20)
//!     .build()?;
//! let mut neuron = Neuron::new(config);
//! let mut rng = Lfsr::new(1);
//!
//! let mut first_spike = None;
//! for tick in 0..10 {
//!     neuron.integrate(AxonType::A0, &mut rng);
//!     if neuron.finish_tick(&mut rng).fired() && first_spike.is_none() {
//!         first_spike = Some(tick);
//!     }
//! }
//! // 5 units/tick against a threshold of 20 crosses on the fourth tick.
//! assert_eq!(first_spike, Some(3));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod config;
mod deterministic;
mod lfsr;
mod neuron;
mod weight;

pub mod behavior;
pub mod micro;
pub mod presets;

pub use config::{
    ConfigError, NegativeThresholdMode, NeuronConfig, NeuronConfigBuilder, ResetMode,
};
pub use deterministic::{
    deterministic_quiescent, deterministic_scan_uniform, deterministic_scan_uniform_lanes,
    deterministic_tick, DeterministicParams, LaneScan, SCAN_FIRED, SCAN_UNSETTLED,
};
pub use lfsr::Lfsr;
pub use neuron::{Neuron, TickOutcome, POTENTIAL_MAX, POTENTIAL_MIN};
pub use weight::{AxonType, Weight, WeightError, AXON_TYPES};
