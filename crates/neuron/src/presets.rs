//! Canonical single-neuron parameterisations.
//!
//! These are the building-block configurations used throughout the behaviour
//! catalogue ([`crate::behavior`]) and the application crates. Each function
//! returns a validated [`NeuronConfig`].

use crate::config::{NeuronConfig, ResetMode};
use crate::weight::{AxonType, Weight};

/// A relay that converts `threshold` units of excitation into one spike.
///
/// Type `A0` carries `+weight`, type `A3` carries `−weight`; the other types
/// are zero. Uses absolute reset to 0.
pub fn relay(weight: i32, threshold: u32) -> NeuronConfig {
    NeuronConfig::builder()
        .weight(AxonType::A0, Weight::saturating(weight))
        .weight(AxonType::A3, Weight::saturating(-weight))
        .threshold(threshold)
        .build()
        .expect("relay preset is valid")
}

/// A tonically firing neuron driven by its own positive leak.
///
/// Fires every `ceil(threshold / leak)` ticks with no input at all.
pub fn tonic_driver(leak: u32, threshold: u32) -> NeuronConfig {
    NeuronConfig::builder()
        .leak(leak as i32)
        .threshold(threshold)
        .build()
        .expect("tonic driver preset is valid")
}

/// A leaky integrator: potential decays toward zero by `decay` per tick
/// (leak reversal), with a floor at zero so inhibition cannot build debt.
pub fn leaky_integrator(weight: i32, threshold: u32, decay: u32) -> NeuronConfig {
    NeuronConfig::builder()
        .weight(AxonType::A0, Weight::saturating(weight))
        .weight(AxonType::A3, Weight::saturating(-weight))
        .leak(-(decay as i32))
        .leak_reversal(true)
        .threshold(threshold)
        .negative_threshold(0)
        .build()
        .expect("leaky integrator preset is valid")
}

/// A perfect (non-leaky) integrator with linear reset: output rate is exactly
/// `input rate / threshold`, with no rounding loss across ticks.
pub fn rate_divider(threshold: u32) -> NeuronConfig {
    NeuronConfig::builder()
        .weight(AxonType::A0, Weight::saturating(1))
        .weight(AxonType::A3, Weight::saturating(-1))
        .reset_mode(ResetMode::Linear)
        .threshold(threshold)
        .build()
        .expect("rate divider preset is valid")
}

/// A latch: once the potential crosses threshold it fires every tick until
/// externally cleared ([`ResetMode::None`] keeps the potential).
pub fn latch(weight: i32, threshold: u32) -> NeuronConfig {
    NeuronConfig::builder()
        .weight(AxonType::A0, Weight::saturating(weight))
        .weight(AxonType::A3, Weight::saturating(-weight))
        .reset_mode(ResetMode::None)
        .threshold(threshold)
        .build()
        .expect("latch preset is valid")
}

/// A spontaneously active stochastic neuron: the stochastic leak adds `+1`
/// with probability `drive/256` each tick; the neuron fires on average every
/// `threshold · 256 / drive` ticks with geometric jitter.
pub fn spontaneous(drive: u32, threshold: u32) -> NeuronConfig {
    NeuronConfig::builder()
        .leak(drive.min(256) as i32)
        .stochastic_leak(true)
        .threshold(threshold)
        .build()
        .expect("spontaneous preset is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lfsr::Lfsr;
    use crate::neuron::Neuron;

    #[test]
    fn relay_fires_once_per_threshold_units() {
        let mut n = Neuron::new(relay(5, 10));
        let mut rng = Lfsr::new(3);
        n.integrate(AxonType::A0, &mut rng);
        assert!(!n.finish_tick(&mut rng).fired());
        n.integrate(AxonType::A0, &mut rng);
        assert!(n.finish_tick(&mut rng).fired());
    }

    #[test]
    fn tonic_driver_period_is_threshold_over_leak() {
        let mut n = Neuron::new(tonic_driver(3, 9));
        let mut rng = Lfsr::new(3);
        let raster: Vec<bool> = (0..12).map(|_| n.finish_tick(&mut rng).fired()).collect();
        // V: 3,6,9(fire),3,6,9(fire)... period 3, first at index 2.
        assert_eq!(
            raster,
            vec![false, false, true, false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn rate_divider_is_exact() {
        let mut n = Neuron::new(rate_divider(3));
        let mut rng = Lfsr::new(3);
        let mut spikes = 0;
        for _ in 0..300 {
            n.integrate(AxonType::A0, &mut rng);
            if n.finish_tick(&mut rng).fired() {
                spikes += 1;
            }
        }
        assert_eq!(spikes, 100);
    }

    #[test]
    fn latch_keeps_firing() {
        let mut n = Neuron::new(latch(10, 10));
        let mut rng = Lfsr::new(3);
        n.integrate(AxonType::A0, &mut rng);
        assert!(n.finish_tick(&mut rng).fired());
        for _ in 0..5 {
            assert!(n.finish_tick(&mut rng).fired());
        }
    }

    #[test]
    fn leaky_integrator_floors_at_zero() {
        let mut n = Neuron::new(leaky_integrator(5, 100, 2));
        let mut rng = Lfsr::new(3);
        n.integrate(AxonType::A3, &mut rng); // -5
        n.finish_tick(&mut rng);
        assert_eq!(n.potential(), 0);
    }

    #[test]
    fn spontaneous_rate_near_expectation() {
        let mut n = Neuron::new(spontaneous(64, 2));
        let mut rng = Lfsr::new(1234);
        let ticks = 40_000;
        let spikes = (0..ticks)
            .filter(|_| n.finish_tick(&mut rng).fired())
            .count();
        // Expected rate = (64/256) / 2 = 0.125 per tick.
        let rate = spikes as f64 / ticks as f64;
        assert!((rate - 0.125).abs() < 0.01, "rate = {rate}");
    }
}
