//! The neurosynaptic core proper: builder, tick evaluation, statistics.

use std::fmt;

use brainsim_faults::{FaultInjector, FaultStats, NeuronFault, StuckAt};
use brainsim_neuron::{
    deterministic_quiescent, deterministic_scan_uniform, deterministic_scan_uniform_lanes,
    deterministic_tick, AxonType, DeterministicParams, LaneScan, Lfsr, Neuron, NeuronConfig,
    SCAN_FIRED, SCAN_UNSETTLED,
};
use serde::{Deserialize, Serialize};

use crate::crossbar::Crossbar;
use crate::scheduler::{bitmap_indices, Scheduler, SCHEDULER_SLOTS};
use crate::spike::{DeliverError, Destination};
use crate::swar::{LaneSwarKernel, SwarKernel};

/// Compile-time kill switch for the word-parallel paths (the `force-scalar`
/// feature): [`EvalStrategy::Swar`] then evaluates through the scalar
/// sparse code and the struct-of-arrays fast path never engages, so CI can
/// run the whole differential matrix against the reference implementation.
const FORCE_SCALAR: bool = cfg!(feature = "force-scalar");

/// How the per-tick synaptic integration is computed.
///
/// All strategies implement the same canonical semantics — *per neuron, in
/// axon-type order, integrate the number of active connected axons of that
/// type* — and therefore produce bit-identical results, including in
/// stochastic modes (the LFSR draw order is part of the canonical
/// semantics). The word-parallel default is uniformly fastest (see the
/// `chip_tick` benchmark baseline); [`EvalStrategy::Dense`] and
/// [`EvalStrategy::Sparse`] are kept as independent, obviously-correct
/// references whose bit-exact agreement with the SWAR path is itself a
/// verification artifact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvalStrategy {
    /// Column-oriented: for every neuron, scan the active axons and test
    /// crossbar bits. Cost `O(neurons × active_axons)` independent of
    /// density.
    Dense,
    /// Row-oriented (event-driven): for every active axon, scan its crossbar
    /// row and bump per-neuron type counters. Cost proportional to the
    /// number of actual synaptic events.
    Sparse,
    /// Word-parallel (bit-sliced SWAR): active crossbar rows are combined
    /// 64 neurons per word operation through per-type carry-save counter
    /// planes ([`crate::SwarKernel`]), and cores whose neurons are all
    /// deterministic additionally integrate membrane potentials through a
    /// flat struct-of-arrays fast path that bypasses the per-neuron object
    /// walk entirely.
    #[default]
    Swar,
}

/// Cumulative event counts for one core, the raw input to the energy model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Ticks evaluated.
    pub ticks: u64,
    /// Synaptic events integrated (active axon × connected neuron pairs).
    pub synaptic_events: u64,
    /// Neuron leak/threshold evaluations (neurons × ticks).
    pub neuron_updates: u64,
    /// Spikes produced.
    pub spikes: u64,
    /// Axon events consumed from the scheduler.
    pub axon_events: u64,
    /// Faults injected into this core (all zero unless a fault plan was
    /// applied via [`NeurosynapticCore::apply_faults`]).
    pub faults: FaultStats,
}

impl CoreStats {
    /// Accumulates another stats block into this one.
    pub fn merge(&mut self, other: &CoreStats) {
        self.ticks += other.ticks;
        self.synaptic_events += other.synaptic_events;
        self.neuron_updates += other.neuron_updates;
        self.spikes += other.spikes;
        self.axon_events += other.axon_events;
        self.faults.merge(&other.faults);
    }
}

/// Fault state applied to one core: present only when a plan injected
/// something here, so the healthy path pays a single pointer test.
#[derive(Debug, Clone)]
struct CoreFaults {
    /// The whole core is disabled: it consumes events but never evaluates.
    dropped: bool,
    /// Per-neuron "never fires" mask.
    dead: Vec<bool>,
    /// Sorted list of stuck-firing neurons (merged into each tick's output).
    stuck: Vec<u16>,
    /// Structural fault counts (sites disabled at apply time), re-seeded
    /// into the statistics on reset so they survive [`NeurosynapticCore::reset`].
    structural: FaultStats,
}

/// Parameter storage for the struct-of-arrays fast path.
///
/// Cores are overwhelmingly programmed with one parameter block for the
/// whole population; storing that block once costs ~40 bytes where the
/// per-neuron vector costs ~10 KiB on a full-size core — and, as important
/// for the tick path, it stops a cold 10 KiB allocation from sitting
/// between consecutive cores' hot membrane planes in memory.
#[derive(Debug, Clone)]
enum ParamStore {
    /// Every neuron shares this block.
    Uniform(DeterministicParams),
    /// Per-neuron blocks, index-aligned with the neuron array.
    PerNeuron(Vec<DeterministicParams>),
}

impl ParamStore {
    /// Compresses a per-neuron vector (uniform populations collapse to one
    /// block). `params` must be non-empty.
    fn from_params(params: Vec<DeterministicParams>) -> ParamStore {
        if params.windows(2).all(|pair| pair[0] == pair[1]) {
            ParamStore::Uniform(params[0])
        } else {
            ParamStore::PerNeuron(params)
        }
    }

    /// The shared block, when storage is uniform.
    fn uniform(&self) -> Option<&DeterministicParams> {
        match self {
            ParamStore::Uniform(p) => Some(p),
            ParamStore::PerNeuron(_) => None,
        }
    }

    /// Neuron `index`'s block, whatever the storage.
    #[inline]
    fn get(&self, index: usize) -> &DeterministicParams {
        match self {
            ParamStore::Uniform(p) => p,
            ParamStore::PerNeuron(v) => &v[index],
        }
    }
}

/// Struct-of-arrays state for the deterministic neuron fast path.
///
/// Built once at construction time when — and only when — every neuron in
/// the core passes [`NeuronConfig::is_deterministic`]. While the core runs
/// under [`EvalStrategy::Swar`], `potentials` is the authoritative membrane
/// state and phase 2 is a flat loop over `(params, potentials, counts)`
/// with no LFSR access; on any transition away from the fast path the
/// potentials are written back into the scalar neurons.
#[derive(Debug, Clone)]
struct SoaFastPath {
    /// Per-neuron parameter blocks (uniform populations store one).
    params: ParamStore,
    /// Flat membrane potentials, authoritative while the fast path is live.
    potentials: Vec<i32>,
    /// True when every neuron shares one scan-safe parameter block: phase 2
    /// then runs the vectorised population scan over `counts`/`flags`
    /// instead of the per-neuron walk. Cores are overwhelmingly programmed
    /// this way (a handful of neuron types per core), so this is the hot
    /// configuration.
    uniform: bool,
    /// Type-major planar event counters (`counts[ty*n + neuron]`), the
    /// unit-stride layout [`deterministic_scan_uniform`] consumes. `u16`
    /// lanes are exact (a count is bounded by the axon count ≤ 256) and
    /// halve the scan's memory traffic. Used only on the uniform path;
    /// heterogeneous cores share the core's interleaved block instead.
    counts: Vec<u16>,
    /// Per-neuron outcome bytes from the scan ([`SCAN_FIRED`] /
    /// [`SCAN_UNSETTLED`]).
    flags: Vec<u8>,
}

/// Error from [`CoreBuilder`] configuration calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreBuildError {
    /// Axon index out of range.
    NoSuchAxon(usize),
    /// Neuron index out of range.
    NoSuchNeuron(usize),
    /// A neuron target delay outside `1..=15`.
    BadDelay(u8),
}

impl fmt::Display for CoreBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreBuildError::NoSuchAxon(a) => write!(f, "axon {a} out of range"),
            CoreBuildError::NoSuchNeuron(n) => write!(f, "neuron {n} out of range"),
            CoreBuildError::BadDelay(d) => write!(f, "axonal delay {d} outside 1..=15"),
        }
    }
}

impl std::error::Error for CoreBuildError {}

/// The builder's per-neuron programming table, with uniform-run
/// compression.
///
/// Sparse full-silicon workloads program thousands of structurally silent
/// cores by writing the *same* `(config, destination)` pair to every
/// neuron in index order. The table recognises that pattern and stores the
/// pair once — a 64×64 chip builder then holds a few hundred bytes per
/// quiescent core instead of ~25 KiB of identical parameter blocks — and
/// falls back to dense per-neuron vectors on the first write that breaks
/// the run.
#[derive(Debug, Clone)]
enum NeuronTable {
    /// Neurons `0..programmed` hold `front`; the rest hold the default
    /// `back` pair (`NeuronConfig::default()`, [`Destination::Disabled`]).
    Uniform {
        front: Box<(NeuronConfig, Destination)>,
        back: Box<(NeuronConfig, Destination)>,
        programmed: usize,
    },
    /// Per-neuron storage.
    Dense {
        configs: Vec<NeuronConfig>,
        destinations: Vec<Destination>,
    },
}

impl NeuronTable {
    fn new() -> NeuronTable {
        let default = (NeuronConfig::default(), Destination::Disabled);
        NeuronTable::Uniform {
            front: Box::new(default.clone()),
            back: Box::new(default),
            programmed: 0,
        }
    }

    /// Records one neuron programming, compressing uniform runs.
    fn set(&mut self, index: usize, config: NeuronConfig, destination: Destination, n: usize) {
        if let NeuronTable::Uniform {
            front, programmed, ..
        } = self
        {
            let matches_front = front.0 == config && front.1 == destination;
            if *programmed == 0 && index == 0 {
                **front = (config, destination);
                *programmed = 1;
                return;
            }
            if matches_front && index <= *programmed {
                if index == *programmed {
                    *programmed += 1;
                }
                return;
            }
            self.densify(n);
        }
        if let NeuronTable::Dense {
            configs,
            destinations,
        } = self
        {
            configs[index] = config;
            destinations[index] = destination;
        }
    }

    /// Expands to per-neuron storage.
    fn densify(&mut self, n: usize) {
        if let NeuronTable::Uniform {
            front,
            back,
            programmed,
        } = self
        {
            let mut configs = vec![back.0.clone(); n];
            let mut destinations = vec![back.1; n];
            for i in 0..*programmed {
                configs[i] = front.0.clone();
                destinations[i] = front.1;
            }
            *self = NeuronTable::Dense {
                configs,
                destinations,
            };
        }
    }

    /// Neuron `index`'s parameter block.
    fn config(&self, index: usize) -> &NeuronConfig {
        match self {
            NeuronTable::Uniform {
                front,
                back,
                programmed,
            } => {
                if index < *programmed {
                    &front.0
                } else {
                    &back.0
                }
            }
            NeuronTable::Dense { configs, .. } => &configs[index],
        }
    }

    /// Neuron `index`'s destination.
    fn destination(&self, index: usize) -> Destination {
        match self {
            NeuronTable::Uniform {
                front,
                back,
                programmed,
            } => {
                if index < *programmed {
                    front.1
                } else {
                    back.1
                }
            }
            NeuronTable::Dense { destinations, .. } => destinations[index],
        }
    }

    /// The single `(config, destination)` pair shared by *all* `n` neurons,
    /// if the table is provably uniform.
    fn fully_uniform(&self, n: usize) -> Option<&(NeuronConfig, Destination)> {
        match self {
            NeuronTable::Uniform {
                front,
                back,
                programmed,
            } => {
                if *programmed == n || **front == **back {
                    Some(front)
                } else if *programmed == 0 {
                    Some(back)
                } else {
                    None
                }
            }
            NeuronTable::Dense { .. } => None,
        }
    }
}

/// Builder for a [`NeurosynapticCore`].
#[derive(Debug, Clone)]
pub struct CoreBuilder {
    axons: usize,
    neurons: usize,
    axon_types: Vec<AxonType>,
    crossbar: Crossbar,
    table: NeuronTable,
    seed: u32,
    strategy: EvalStrategy,
}

impl CoreBuilder {
    /// Starts a core with the given dimensions (a full-size core is
    /// `256 × 256`; smaller cores are useful in tests).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(axons: usize, neurons: usize) -> CoreBuilder {
        assert!(axons > 0 && neurons > 0, "core dimensions must be non-zero");
        CoreBuilder {
            axons,
            neurons,
            axon_types: vec![AxonType::A0; axons],
            crossbar: Crossbar::new(axons, neurons),
            table: NeuronTable::new(),
            seed: 1,
            strategy: EvalStrategy::default(),
        }
    }

    /// Sets the axon type of one axon.
    pub fn axon_type(&mut self, axon: usize, ty: AxonType) -> Result<&mut Self, CoreBuildError> {
        if axon >= self.axons {
            return Err(CoreBuildError::NoSuchAxon(axon));
        }
        self.axon_types[axon] = ty;
        Ok(self)
    }

    /// Configures one neuron: parameter block and spike destination.
    pub fn neuron(
        &mut self,
        index: usize,
        config: NeuronConfig,
        destination: Destination,
    ) -> Result<&mut Self, CoreBuildError> {
        if index >= self.neurons {
            return Err(CoreBuildError::NoSuchNeuron(index));
        }
        if let Destination::Axon(target) = destination {
            if target.delay == 0 || target.delay as usize >= SCHEDULER_SLOTS {
                return Err(CoreBuildError::BadDelay(target.delay));
            }
        }
        self.table.set(index, config, destination, self.neurons);
        Ok(self)
    }

    /// Sets or clears one crossbar bit.
    pub fn synapse(
        &mut self,
        axon: usize,
        neuron: usize,
        connected: bool,
    ) -> Result<&mut Self, CoreBuildError> {
        if axon >= self.axons {
            return Err(CoreBuildError::NoSuchAxon(axon));
        }
        if neuron >= self.neurons {
            return Err(CoreBuildError::NoSuchNeuron(neuron));
        }
        self.crossbar.set(axon, neuron, connected);
        Ok(self)
    }

    /// Programs one packed 64-neuron word of an axon's crossbar row in a
    /// single call (bit `b` of `bits` connects `axon → word * 64 + b`),
    /// replacing whatever that word held. The bulk wiring path for
    /// generated workloads; see [`Crossbar::set_row_word`].
    pub fn synapse_row_word(
        &mut self,
        axon: usize,
        word: usize,
        bits: u64,
    ) -> Result<&mut Self, CoreBuildError> {
        if axon >= self.axons {
            return Err(CoreBuildError::NoSuchAxon(axon));
        }
        let lanes = self.neurons.saturating_sub(word * 64).min(64);
        if lanes == 0 || (lanes < 64 && bits >> lanes != 0) {
            // Either the word is entirely past the last neuron, or a tail
            // bit names a neuron column the core does not have.
            return Err(CoreBuildError::NoSuchNeuron(word * 64 + lanes));
        }
        self.crossbar.set_row_word(axon, word, bits);
        Ok(self)
    }

    /// Seeds the core's LFSR (stochastic modes).
    pub fn seed(&mut self, seed: u32) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Selects the evaluation strategy.
    pub fn strategy(&mut self, strategy: EvalStrategy) -> &mut Self {
        self.strategy = strategy;
        self
    }

    /// Finalises the core.
    ///
    /// A core whose neurons all share one `(config, destination)` pair and
    /// rest at a zero-input fixed point is built *dormant*: a small header
    /// holding the shared pair instead of per-neuron vectors. Dormant cores
    /// are bit-identical in behaviour — the full state materialises on the
    /// first tick that has work to do — but a never-spiked core on a
    /// full-silicon chip costs hundreds of bytes, not tens of kilobytes.
    pub fn build(&self) -> NeurosynapticCore {
        if let Some((config, destination)) = self
            .table
            .fully_uniform(self.neurons)
            .filter(|pair| Neuron::new(pair.0.clone()).is_quiescent())
            .cloned()
        {
            let fusible = config.deterministic_params().is_some_and(|p| p.scan_safe());
            return NeurosynapticCore {
                axon_types: self.axon_types.clone(),
                crossbar: self.crossbar.clone(),
                neurons: Vec::new(),
                n_neurons: self.neurons,
                destinations: Vec::new(),
                scheduler: Scheduler::new(self.axons),
                rng: Lfsr::new(self.seed),
                strategy: self.strategy,
                now: 0,
                stats: CoreStats::default(),
                counts: Vec::new(),
                kernel: SwarKernel::new(self.neurons),
                bitmap: vec![0u64; self.axons.div_ceil(64)],
                soa: None,
                dormant: Some(Box::new(DormantCore {
                    config,
                    destination,
                    fusible,
                })),
                faults: None,
                settled: true,
            };
        }

        let configs: Vec<&NeuronConfig> = (0..self.neurons).map(|i| self.table.config(i)).collect();
        let neurons: Vec<Neuron> = configs.iter().map(|&c| Neuron::new(c.clone())).collect();
        // A freshly built core rests at V = 0 everywhere; it is settled from
        // tick 0 iff every neuron is a zero-input fixed point there.
        let settled = neurons.iter().all(Neuron::is_quiescent);
        // Fast-path eligibility is decided once, here: a single stochastic
        // neuron anywhere in the core keeps the whole core on the scalar
        // phase-2 walk (the LFSR draw order is global to the core).
        let soa = configs
            .iter()
            .map(|c| c.deterministic_params())
            .collect::<Option<Vec<_>>>()
            .map(|params| {
                let params = ParamStore::from_params(params);
                let uniform = params.uniform().is_some_and(|p| p.scan_safe());
                Box::new(SoaFastPath {
                    params,
                    potentials: vec![0; self.neurons],
                    uniform,
                    counts: if uniform {
                        vec![0; self.neurons * 4]
                    } else {
                        Vec::new()
                    },
                    flags: if uniform {
                        vec![0; self.neurons]
                    } else {
                        Vec::new()
                    },
                })
            });
        NeurosynapticCore {
            axon_types: self.axon_types.clone(),
            crossbar: self.crossbar.clone(),
            neurons,
            n_neurons: self.neurons,
            destinations: (0..self.neurons)
                .map(|i| self.table.destination(i))
                .collect(),
            scheduler: Scheduler::new(self.axons),
            rng: Lfsr::new(self.seed),
            strategy: self.strategy,
            now: 0,
            stats: CoreStats::default(),
            counts: Vec::new(),
            kernel: SwarKernel::new(self.neurons),
            bitmap: vec![0u64; self.axons.div_ceil(64)],
            soa,
            dormant: None,
            faults: None,
            settled,
        }
    }
}

/// Compressed image of a core whose neurons all share one
/// `(config, destination)` pair and rest at a zero-input fixed point.
///
/// While this is present the core's per-neuron vectors (`neurons`,
/// `destinations`, `counts`, the SoA planes) are empty and unallocated;
/// every read-side accessor answers from the shared pair, and the first
/// tick with actual work — or any fault/state mutation — calls
/// [`NeurosynapticCore::materialize`] to expand the full representation.
/// Behaviour is bit-identical either way.
#[derive(Debug, Clone)]
struct DormantCore {
    /// The parameter block shared by every neuron.
    config: NeuronConfig,
    /// The destination shared by every neuron.
    destination: Destination,
    /// Whether the materialised core will satisfy
    /// [`NeurosynapticCore::fusible_uniform`] (modulo strategy), precomputed
    /// so `ChipBatch` can take fusion decisions without materialising.
    fusible: bool,
}

/// One neurosynaptic core; see the crate-level docs.
#[derive(Debug, Clone)]
pub struct NeurosynapticCore {
    axon_types: Vec<AxonType>,
    crossbar: Crossbar,
    neurons: Vec<Neuron>,
    /// Neuron count, authoritative even while `neurons` is unmaterialised.
    n_neurons: usize,
    destinations: Vec<Destination>,
    scheduler: Scheduler,
    rng: Lfsr,
    strategy: EvalStrategy,
    now: u64,
    stats: CoreStats,
    /// Reusable per-neuron × type event counters (sparse/SWAR path scratch).
    counts: Vec<u32>,
    /// Bit-sliced counter scratch for the word-parallel phase-1 path.
    kernel: SwarKernel,
    /// Reusable scratch for the tick's due-axon bitmap (avoids one
    /// allocation per core per tick on the scheduler take).
    bitmap: Vec<u64>,
    /// Struct-of-arrays fast-path state; present iff every neuron is
    /// deterministic and no fault plan has vetoed it. Authoritative for the
    /// membrane potentials only while [`NeurosynapticCore::soa_live`].
    soa: Option<Box<SoaFastPath>>,
    /// Compressed uniform-quiescent image; see [`DormantCore`]. Present ⇒
    /// `neurons`/`destinations`/`counts`/`soa` are empty and `faults` is
    /// `None`.
    dormant: Option<Box<DormantCore>>,
    /// Injected fault state; `None` (the overwhelmingly common case) keeps
    /// the healthy tick path branch-free beyond one pointer test.
    faults: Option<Box<CoreFaults>>,
    /// Whether the last evaluated tick proved this core to be at a
    /// zero-input fixed point (no events consumed, no spikes fired, every
    /// neuron individually quiescent). Together with an empty scheduler this
    /// makes further ticks skippable — see [`NeurosynapticCore::is_quiescent`].
    settled: bool,
}

impl NeurosynapticCore {
    /// Number of axons.
    #[inline]
    pub fn axons(&self) -> usize {
        self.axon_types.len()
    }

    /// Number of neurons.
    #[inline]
    pub fn neurons(&self) -> usize {
        self.n_neurons
    }

    /// Expands a dormant core to its full per-neuron representation —
    /// exactly the state a dense build of the same programming would have
    /// produced. Idempotent; a no-op on already-dense cores.
    fn materialize(&mut self) {
        let Some(dormant) = self.dormant.take() else {
            return;
        };
        let n = self.n_neurons;
        let DormantCore {
            config,
            destination,
            ..
        } = *dormant;
        self.soa = config.deterministic_params().map(|p| {
            let uniform = p.scan_safe();
            Box::new(SoaFastPath {
                params: ParamStore::Uniform(p),
                potentials: vec![0; n],
                uniform,
                counts: if uniform { vec![0; n * 4] } else { Vec::new() },
                flags: if uniform { vec![0; n] } else { Vec::new() },
            })
        });
        self.destinations = vec![destination; n];
        self.neurons = vec![Neuron::new(config); n];
    }

    /// The core's current tick cursor (the next tick it will evaluate).
    #[inline]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The crossbar (read-only).
    pub fn crossbar(&self) -> &Crossbar {
        &self.crossbar
    }

    /// Moves this core's crossbar words into a chip-level arena window;
    /// see [`Crossbar::adopt_arena`]. The window must hold the crossbar's
    /// exact bits. Used by the chip builder to lay every programmed
    /// crossbar out contiguously in placement order.
    pub fn adopt_crossbar_arena(&mut self, arena: std::sync::Arc<[u64]>, offset: usize) {
        self.crossbar.adopt_arena(arena, offset);
    }

    /// The spike destination of a neuron.
    pub fn destination(&self, neuron: usize) -> Destination {
        if let Some(d) = self.dormant.as_deref() {
            assert!(neuron < self.n_neurons, "neuron {neuron} out of range");
            return d.destination;
        }
        self.destinations[neuron]
    }

    /// Whether this core is still dormant (header-only residency): built
    /// fully uniform and provably quiescent, and not yet woken by an
    /// arriving event, fault injection, or state import. Dormancy is a
    /// storage optimisation, never semantics — a dormant core is
    /// observationally identical to its materialised twin.
    pub fn is_dormant(&self) -> bool {
        self.dormant.is_some()
    }

    /// The membrane potential of a neuron (for tracing and tests).
    pub fn potential(&self, neuron: usize) -> i32 {
        if self.dormant.is_some() {
            assert!(neuron < self.n_neurons, "neuron {neuron} out of range");
            return 0; // dormant cores rest at V = 0 by construction
        }
        if self.soa_live() {
            if let Some(soa) = self.soa.as_deref() {
                return soa.potentials[neuron];
            }
        }
        self.neurons[neuron].potential()
    }

    /// Cumulative event statistics.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// Whether the struct-of-arrays fast path currently owns the membrane
    /// potentials: the core is eligible (and un-vetoed), the strategy is
    /// word-parallel, and the scalar override feature is off.
    #[inline]
    fn soa_live(&self) -> bool {
        !FORCE_SCALAR && self.soa.is_some() && self.strategy == EvalStrategy::Swar
    }

    /// Tears the fast path down for good (fault veto), migrating the
    /// authoritative potentials back into the scalar neurons first.
    fn retire_fast_path(&mut self) {
        if self.soa_live() {
            if let Some(soa) = self.soa.as_deref() {
                for (neuron, &v) in self.neurons.iter_mut().zip(&soa.potentials) {
                    neuron.set_potential(v);
                }
            }
        }
        self.soa = None;
    }

    /// Switches the evaluation strategy at a tick boundary.
    ///
    /// Membrane-potential authority moves with the strategy: switching the
    /// fast path in loads the scalar potentials into the flat array,
    /// switching it out writes them back, so mid-run strategy changes stay
    /// bit-identical to an uninterrupted run.
    pub fn set_strategy(&mut self, strategy: EvalStrategy) {
        let was_live = self.soa_live();
        self.strategy = strategy;
        let is_live = self.soa_live();
        if was_live == is_live {
            return;
        }
        if let Some(soa) = self.soa.as_deref_mut() {
            if is_live {
                for (slot, neuron) in soa.potentials.iter_mut().zip(&self.neurons) {
                    *slot = neuron.potential();
                }
            } else {
                for (neuron, &v) in self.neurons.iter_mut().zip(&soa.potentials) {
                    neuron.set_potential(v);
                }
            }
        }
    }

    /// The current evaluation strategy.
    pub fn strategy(&self) -> EvalStrategy {
        self.strategy
    }

    /// Whether the scheduler has no pending events. O(1).
    pub fn is_idle(&self) -> bool {
        self.scheduler.is_idle()
    }

    /// Number of axon events pending in the scheduler (the core's event
    /// backlog across all delay slots). O(1) — backed by the scheduler's
    /// pending-event counter; telemetry samples it every tick.
    #[inline]
    pub fn pending_events(&self) -> usize {
        self.scheduler.pending()
    }

    /// The quiescence contract: true when evaluating the next tick is a
    /// provable no-op, so the chip's active-core scheduler may replace the
    /// full evaluation sweep with [`NeurosynapticCore::skip_tick`] and still
    /// produce bit-identical rasters, statistics and LFSR streams.
    ///
    /// A core is quiescent when its scheduler holds no pending axon events
    /// and either the core is dropped by a fault plan (its tick is pure
    /// bookkeeping), or the last evaluation proved a zero-input fixed point
    /// ([`Neuron::is_quiescent`] for every neuron, nothing fired) and no
    /// stuck-firing fault forces spikes every tick. O(1): the scheduler
    /// keeps a pending-event counter and the fixed point is cached from the
    /// last evaluated tick.
    #[inline]
    pub fn is_quiescent(&self) -> bool {
        if !self.scheduler.is_idle() {
            return false;
        }
        match self.faults.as_deref() {
            Some(f) if f.dropped => true,
            Some(f) if !f.stuck.is_empty() => false,
            _ => self.settled,
        }
    }

    /// Skips one tick of a quiescent core in O(1), with accounting that is
    /// bit-identical to a full evaluation of the (provably no-op) tick:
    /// `ticks` and `neuron_updates` advance exactly as the evaluation sweep
    /// would have advanced them.
    ///
    /// # Panics
    ///
    /// Panics if `tick != self.now()`. Calling this on a non-quiescent core
    /// is a logic error (debug assertion); the chip runtime only calls it
    /// after [`NeurosynapticCore::is_quiescent`].
    pub fn skip_tick(&mut self, tick: u64) {
        assert_eq!(tick, self.now, "core evaluated out of tick order");
        debug_assert!(self.is_quiescent(), "skip_tick on a non-quiescent core");
        self.stats.ticks += 1;
        if !self.is_dropped() {
            // The evaluation sweep would have charged one (no-op) update per
            // neuron; a dropped core's tick charges none.
            self.stats.neuron_updates += self.n_neurons as u64;
        }
        self.now += 1;
    }

    /// Advances a quiescent core's clock by `behind` ticks in one step —
    /// the bulk form of [`NeurosynapticCore::skip_tick`], used by the
    /// chip's deferred-skip scheduler to fast-forward a core that was left
    /// untouched for a stretch of globally-evaluated ticks. Accounting is
    /// bit-identical to calling `skip_tick` `behind` times.
    pub fn skip_ticks(&mut self, behind: u64) {
        debug_assert!(
            behind == 0 || self.is_quiescent(),
            "bulk skip on a non-quiescent core"
        );
        self.stats.ticks += behind;
        if !self.is_dropped() {
            self.stats.neuron_updates += behind * self.n_neurons as u64;
        }
        self.now += behind;
    }

    /// Whether a fault plan disabled this core outright.
    #[inline]
    pub fn is_dropped(&self) -> bool {
        self.faults.as_ref().is_some_and(|f| f.dropped)
    }

    /// Applies a fault plan to this core as the core at grid position
    /// `(x, y)`.
    ///
    /// Stuck-at crossbar cells are burned into the crossbar immediately, so
    /// the per-tick integration loops stay untouched; dead / stuck-firing
    /// neurons and whole-core dropout install a mask consulted once per
    /// tick. Applying a benign injector is a no-op. Idempotence is not
    /// guaranteed — apply a plan once, right after construction.
    pub fn apply_faults(&mut self, injector: &FaultInjector, x: usize, y: usize) {
        if injector.is_benign() {
            return;
        }
        // Fault masks index per-neuron state; expand a dormant core first
        // (this also upholds the invariant that dormant ⇒ no faults).
        self.materialize();
        let neurons = self.neurons.len();
        let mut faults = CoreFaults {
            dropped: injector.core_dropped(x, y),
            dead: vec![false; neurons],
            stuck: Vec::new(),
            structural: FaultStats::default(),
        };
        if faults.dropped {
            faults.structural.cores_dropped += 1;
        }
        if injector.has_neuron_faults() {
            for n in 0..neurons {
                match injector.neuron_fault(x, y, n) {
                    Some(NeuronFault::Dead) => {
                        faults.dead[n] = true;
                        faults.structural.neurons_dead += 1;
                    }
                    Some(NeuronFault::StuckFiring) => {
                        faults.stuck.push(n as u16);
                        faults.structural.neurons_stuck_firing += 1;
                    }
                    None => {}
                }
            }
        }
        if injector.has_synapse_faults() {
            // Only cells whose programmed value actually flips are counted:
            // a stuck-at-0 cell under an unprogrammed synapse is invisible.
            for axon in 0..self.axon_types.len() {
                for neuron in 0..neurons {
                    match injector.synapse_fault(x, y, axon, neuron) {
                        Some(StuckAt::Zero) if self.crossbar.get(axon, neuron) => {
                            self.crossbar.set(axon, neuron, false);
                            faults.structural.synapses_stuck_zero += 1;
                        }
                        Some(StuckAt::One) if !self.crossbar.get(axon, neuron) => {
                            self.crossbar.set(axon, neuron, true);
                            faults.structural.synapses_stuck_one += 1;
                        }
                        _ => {}
                    }
                }
            }
        }
        self.stats.faults.merge(&faults.structural);
        if !faults.structural.is_empty() {
            // Dead and stuck-firing neurons mutate per-neuron firing state
            // outside the pure update function; such a core permanently
            // falls back to the scalar phase-2 walk. Crossbar stuck-at
            // cells are already burned into the bits the kernel reads, and
            // whole-core dropout never reaches phase 2, so neither vetoes.
            let veto = faults.structural.neurons_dead > 0 || !faults.stuck.is_empty();
            self.faults = Some(Box::new(faults));
            if veto {
                self.retire_fast_path();
            }
        }
    }

    /// Schedules an axon event for integration at `target_tick`.
    ///
    /// # Errors
    ///
    /// * [`DeliverError::NoSuchAxon`] if the axon does not exist.
    /// * [`DeliverError::DelayTooLong`] if `target_tick` is more than 15
    ///   ticks past the core's cursor, or in the past.
    pub fn deliver(&mut self, axon: usize, target_tick: u64) -> Result<(), DeliverError> {
        if axon >= self.axons() {
            return Err(DeliverError::NoSuchAxon(axon));
        }
        if target_tick < self.now || target_tick >= self.now + SCHEDULER_SLOTS as u64 {
            return Err(DeliverError::DelayTooLong(
                target_tick.saturating_sub(self.now),
            ));
        }
        self.scheduler.schedule(axon, target_tick);
        Ok(())
    }

    /// Schedules an event for every set bit of `bits` — axons `word*64 + b`
    /// — at `target_tick`: the burst form of
    /// [`NeurosynapticCore::deliver`]. Equivalent to one `deliver` per set
    /// bit (scheduling is an idempotent bitmap OR, so order is immaterial)
    /// at a fraction of the per-event cost.
    ///
    /// # Errors
    ///
    /// * [`DeliverError::NoSuchAxon`] if a set bit addresses past the axon
    ///   count (no event is scheduled).
    /// * [`DeliverError::DelayTooLong`] as for `deliver`.
    pub fn deliver_word(
        &mut self,
        word: usize,
        bits: u64,
        target_tick: u64,
    ) -> Result<(), DeliverError> {
        let axons = self.axons();
        if word * 64 >= axons {
            return Err(DeliverError::NoSuchAxon(word * 64));
        }
        let lanes = (axons - word * 64).min(64);
        if lanes < 64 && bits >> lanes != 0 {
            let first_bad = word * 64 + (bits >> lanes).trailing_zeros() as usize + lanes;
            return Err(DeliverError::NoSuchAxon(first_bad));
        }
        if target_tick < self.now || target_tick >= self.now + SCHEDULER_SLOTS as u64 {
            return Err(DeliverError::DelayTooLong(
                target_tick.saturating_sub(self.now),
            ));
        }
        if bits != 0 {
            self.scheduler.schedule_word(word, bits, target_tick);
        }
        Ok(())
    }

    /// Evaluates one tick and returns the indices of the neurons that fired.
    ///
    /// `tick` must equal the core's cursor — the chip's global barrier keeps
    /// all cores in lock-step, and the explicit argument makes desynchrony a
    /// loud failure instead of silent corruption.
    ///
    /// # Panics
    ///
    /// Panics if `tick != self.now()`.
    pub fn tick(&mut self, tick: u64) -> Vec<u16> {
        assert_eq!(tick, self.now, "core evaluated out of tick order");
        self.scheduler.take_into(tick, &mut self.bitmap);

        if self.is_dropped() {
            // A dropped core still consumes its scheduled events (the
            // scheduler window must advance) but performs no work.
            self.stats.ticks += 1;
            self.now += 1;
            return Vec::new();
        }

        // Settled fast exit: a zero-input fixed point with no events due
        // this tick evaluates to exactly nothing — no state change, no LFSR
        // draw, no spike — so charge the tick's bookkeeping and return.
        // This is what keeps dormant cores unmaterialised (and full-grid
        // sweeps cheap over quiescent silicon): the evaluation below would
        // touch every per-neuron plane only to prove a no-op.
        if self.settled
            && self.bitmap.iter().all(|&w| w == 0)
            && self.faults.as_deref().is_none_or(|f| f.stuck.is_empty())
        {
            self.stats.ticks += 1;
            self.stats.neuron_updates += self.n_neurons as u64;
            self.now += 1;
            return Vec::new();
        }
        self.materialize();

        // The scalar override resolves once per tick: under `force-scalar`
        // the word-parallel strategy evaluates through the (equivalent)
        // sparse reference path and the fast path below never engages.
        let strategy = if FORCE_SCALAR && self.strategy == EvalStrategy::Swar {
            EvalStrategy::Sparse
        } else {
            self.strategy
        };

        // Phase 1: synaptic integration into per-neuron type counters. The
        // uniform fast path keeps its own planar counter block, so the
        // interleaved scratch (allocated on first use — most cores never
        // take a scalar path) is only cleared when a path will read it.
        let uniform_fast =
            strategy == EvalStrategy::Swar && self.soa.as_deref().is_some_and(|soa| soa.uniform);
        if !uniform_fast {
            self.counts.clear();
            self.counts.resize(self.n_neurons * 4, 0);
        }
        let mut axon_events = 0u64;
        let mut synaptic_events = 0u64;
        match strategy {
            EvalStrategy::Sparse => {
                for axon in bitmap_indices(&self.bitmap) {
                    axon_events += 1;
                    let ty = self.axon_types[axon].index();
                    for neuron in self.crossbar.row_neurons(axon) {
                        self.counts[neuron * 4 + ty] += 1;
                        synaptic_events += 1;
                    }
                }
            }
            EvalStrategy::Dense => {
                let active: Vec<(usize, usize)> = bitmap_indices(&self.bitmap)
                    .map(|axon| (axon, self.axon_types[axon].index()))
                    .collect();
                axon_events = active.len() as u64;
                for neuron in 0..self.neurons.len() {
                    for &(axon, ty) in &active {
                        if self.crossbar.get(axon, neuron) {
                            self.counts[neuron * 4 + ty] += 1;
                            synaptic_events += 1;
                        }
                    }
                }
            }
            EvalStrategy::Swar => {
                // Word-parallel: each active row folds into the bit-sliced
                // counter planes 64 neurons at a time, and the census
                // charges the row's cached popcount — the same per-event
                // total the scalar paths count one bit at a time.
                for axon in bitmap_indices(&self.bitmap) {
                    axon_events += 1;
                    synaptic_events += u64::from(self.crossbar.row_popcount(axon));
                    self.kernel.accumulate_row(
                        self.axon_types[axon].index(),
                        self.crossbar.row_words(axon),
                    );
                }
                match self.soa.as_deref_mut() {
                    Some(soa) if soa.uniform => {
                        soa.counts.fill(0);
                        self.kernel.flush_planar(&mut soa.counts);
                    }
                    _ => self.kernel.flush_into(&mut self.counts),
                }
            }
        }

        // Phase 2: canonical neuron update order — neuron-major, type-major.
        let mut fired = Vec::new();
        match self.soa.as_deref_mut() {
            Some(soa) if strategy == EvalStrategy::Swar && soa.uniform => {
                // Uniform fast path: one shared scan-safe parameter block,
                // so the whole population updates through the vectorised
                // branch-free scan (bit-identical to the per-neuron walk by
                // the `deterministic_scan_uniform` contract).
                deterministic_scan_uniform(
                    soa.params.get(0),
                    &mut soa.potentials,
                    &soa.counts,
                    &mut soa.flags,
                );
                let unsettled = harvest_scan_flags(&soa.flags, &mut fired);
                self.settled = axon_events == 0 && fired.is_empty() && !unsettled;
            }
            Some(soa) if strategy == EvalStrategy::Swar => {
                // Deterministic fast path: flat arrays, no LFSR, and the
                // fixed-point test comes from the same pure parameter
                // blocks. Bit-identical to the scalar walk by the
                // `deterministic_tick` contract.
                for (index, (v, counts)) in soa
                    .potentials
                    .iter_mut()
                    .zip(self.counts.chunks_exact(4))
                    .enumerate()
                {
                    let counts = [counts[0], counts[1], counts[2], counts[3]];
                    let (next, fired_now) = deterministic_tick(soa.params.get(index), *v, &counts);
                    *v = next;
                    if fired_now {
                        fired.push(index as u16);
                    }
                }
                self.settled = axon_events == 0
                    && fired.is_empty()
                    && soa
                        .potentials
                        .iter()
                        .enumerate()
                        .all(|(i, &v)| deterministic_quiescent(soa.params.get(i), v));
            }
            _ => {
                for (index, neuron) in self.neurons.iter_mut().enumerate() {
                    for ty in AxonType::ALL {
                        let count = self.counts[index * 4 + ty.index()];
                        neuron.integrate_count(ty, count, &mut self.rng);
                    }
                    if neuron.finish_tick(&mut self.rng).fired() {
                        fired.push(index as u16);
                    }
                }
                // Fixed-point detection for the active-core scheduler: an
                // idle tick (no events, no natural spikes) whose neurons are
                // all individually quiescent proves that every further
                // zero-input tick is a no-op. The per-neuron scan only runs
                // on idle ticks — exactly the ticks the quiescence skip then
                // eliminates.
                self.settled = axon_events == 0
                    && fired.is_empty()
                    && self.neurons.iter().all(Neuron::is_quiescent);
            }
        }

        if let Some(faults) = self.faults.as_deref() {
            if faults.structural.neurons_dead > 0 {
                let before = fired.len();
                fired.retain(|&n| !faults.dead[n as usize]);
                self.stats.faults.spikes_suppressed += (before - fired.len()) as u64;
            }
            if !faults.stuck.is_empty() {
                // Merge the sorted stuck-firing list into the (sorted)
                // natural firing order; forced = stuck neurons that would
                // not have fired this tick anyway.
                let mut merged = Vec::with_capacity(fired.len() + faults.stuck.len());
                let (mut i, mut forced) = (0usize, 0u64);
                for &s in &faults.stuck {
                    while i < fired.len() && fired[i] < s {
                        merged.push(fired[i]);
                        i += 1;
                    }
                    if i < fired.len() && fired[i] == s {
                        i += 1;
                    } else {
                        forced += 1;
                    }
                    merged.push(s);
                }
                merged.extend_from_slice(&fired[i..]);
                fired = merged;
                self.stats.faults.spikes_forced += forced;
            }
        }

        self.stats.ticks += 1;
        self.stats.axon_events += axon_events;
        self.stats.synaptic_events += synaptic_events;
        self.stats.neuron_updates += self.n_neurons as u64;
        self.stats.spikes += fired.len() as u64;
        self.now += 1;
        fired
    }

    /// Whether this core can join a fused batched-lane tick
    /// ([`tick_uniform_lanes`]): the uniform struct-of-arrays fast path is
    /// live (deterministic neurons, one shared scan-safe parameter block,
    /// word-parallel strategy, no scalar override) and no fault plan
    /// dropped the core. Dead / stuck-firing neuron faults already retire
    /// the fast path, so a fusible core is also guaranteed to need no
    /// per-tick fault masking.
    #[inline]
    pub fn fusible_uniform(&self) -> bool {
        if FORCE_SCALAR || self.strategy != EvalStrategy::Swar || self.is_dropped() {
            return false;
        }
        match self.dormant.as_deref() {
            // Dormant ⇒ no faults applied, so the precomputed eligibility
            // bit is the whole answer.
            Some(d) => d.fusible,
            None => self.soa.as_deref().is_some_and(|soa| soa.uniform),
        }
    }

    /// Resets all neuron potentials, the scheduler, the tick cursor and the
    /// statistics, keeping the configuration.
    pub fn reset(&mut self) {
        for neuron in &mut self.neurons {
            neuron.reset_state();
        }
        if let Some(soa) = self.soa.as_deref_mut() {
            soa.potentials.fill(0);
        }
        self.scheduler = Scheduler::new(self.axons());
        self.now = 0;
        self.stats = CoreStats::default();
        // All potentials are back at rest; recompute the fixed point.
        self.settled = self.neurons.iter().all(Neuron::is_quiescent);
        if let Some(faults) = self.faults.as_deref() {
            // Structural defects persist across resets; re-seed their counts.
            self.stats.faults = faults.structural;
        }
    }
}

/// Harvests a population scan's flag bytes eight at a time into `fired`,
/// returning whether any neuron is unsettled. Firing is rare (the common
/// word has no fired bytes), so one u64 test replaces eight byte branches
/// and the fired loop only spins on the exact set bits. Shared by the solo
/// uniform tick and the batched lane tick so both harvest identically.
fn harvest_scan_flags(flags: &[u8], fired: &mut Vec<u16>) -> bool {
    let fired_lanes = u64::from_ne_bytes([SCAN_FIRED; 8]);
    let unsettled_lanes = u64::from_ne_bytes([SCAN_UNSETTLED; 8]);
    let mut unsettled = false;
    let words = flags.chunks_exact(8);
    let tail = words.remainder();
    for (w, chunk) in words.enumerate() {
        let lanes = u64::from_ne_bytes(chunk.try_into().expect("8-byte chunk"));
        unsettled |= lanes & unsettled_lanes != 0;
        let mut hits = lanes & fired_lanes;
        while hits != 0 {
            let lane = hits.trailing_zeros() as usize / 8;
            hits &= hits - 1;
            fired.push((w * 8 + lane) as u16);
        }
    }
    let base = flags.len() - tail.len();
    for (index, &flag) in tail.iter().enumerate() {
        if flag & SCAN_FIRED != 0 {
            fired.push((base + index) as u16);
        }
        unsettled |= flag & SCAN_UNSETTLED != 0;
    }
    unsettled
}

/// Two-phase hot-state repack for a freshly built (or restored) chip.
///
/// A chip's cores are constructed one at a time, so each core's per-tick
/// vectors — scheduler ring, due-axon bitmap, membrane/counter planes,
/// destinations — end up interleaved with the builder's own scratch all
/// over the heap, and the evaluation sweep pays a cache miss per plane per
/// core. This pass reallocates those vectors in placement order: pass 1
/// clones every core's hot vectors front to back while the originals are
/// still alive (forcing the allocator to place the clones in fresh,
/// adjacent memory rather than refilling scattered holes), pass 2 installs
/// the clones and frees the originals. Every clone replaces a bit-identical
/// original, so observable state is untouched.
///
/// Dormant cores carry no per-neuron vectors and contribute nothing; the
/// scalar `neurons` array is reallocated only when it is the authoritative
/// representation (no SoA fast path), keeping the transient footprint of
/// pass 1 proportional to the hot state, not the total state.
pub fn repack_cores(cores: &mut [NeurosynapticCore]) {
    type SoaHotState = (ParamStore, Vec<i32>, Vec<u16>, Vec<u8>);
    struct FreshHotState {
        slots: Vec<u64>,
        bitmap: Vec<u64>,
        axon_types: Vec<AxonType>,
        destinations: Vec<Destination>,
        soa: Option<SoaHotState>,
        neurons: Option<Vec<Neuron>>,
    }
    let fresh: Vec<FreshHotState> = cores
        .iter()
        .map(|core| FreshHotState {
            slots: core.scheduler.clone_slots(),
            bitmap: core.bitmap.clone(),
            axon_types: core.axon_types.clone(),
            destinations: core.destinations.clone(),
            soa: core.soa.as_deref().map(|soa| {
                (
                    soa.params.clone(),
                    soa.potentials.clone(),
                    soa.counts.clone(),
                    soa.flags.clone(),
                )
            }),
            neurons: if core.soa.is_none() && !core.neurons.is_empty() {
                Some(core.neurons.clone())
            } else {
                None
            },
        })
        .collect();
    for (core, f) in cores.iter_mut().zip(fresh) {
        core.scheduler.install_slots(f.slots);
        core.bitmap = f.bitmap;
        core.axon_types = f.axon_types;
        core.destinations = f.destinations;
        if let Some((params, potentials, counts, flags)) = f.soa {
            if let Some(soa) = core.soa.as_deref_mut() {
                soa.params = params;
                soa.potentials = potentials;
                soa.counts = counts;
                soa.flags = flags;
            }
        }
        if let Some(neurons) = f.neurons {
            core.neurons = neurons;
        }
    }
}

/// One fused tick over the same core position of N replica lanes — the
/// chip-major batched inner loop.
///
/// Every core must pass [`NeurosynapticCore::fusible_uniform`] and the
/// lanes must be true replicas of one another at this position: identical
/// crossbar, axon types, and (uniform) neuron parameter block. Per-lane
/// state — scheduler contents, membrane potentials, statistics — is free
/// to differ; that is the point of the batch. The caller owns replica
/// integrity (synapse-fault divergence must drop a lane out of fusion).
///
/// Phase 1 walks the *union* of the lanes' due-axon bitmaps once and
/// feeds each axon's per-lane activity mask to the [`LaneSwarKernel`], so
/// a row shared by most lanes is rippled once (plus complement fixups)
/// instead of once per lane. Phase 2 runs the batched population scan
/// ([`deterministic_scan_uniform_lanes`]) and harvests flags with the
/// same helper as the solo path. Each lane's outputs — fired list,
/// statistics, settled flag, tick cursor — are bit-identical to what
/// [`NeurosynapticCore::tick`] would have produced for that lane alone.
///
/// The `kernel` is reusable scratch; it must have been created with at
/// least `cores.len()` lanes and the cores' neuron count.
///
/// # Panics
///
/// Panics if any core is not at `tick`, the cores disagree on geometry,
/// a core is not [`NeurosynapticCore::fusible_uniform`], or the kernel is
/// too narrow for the lane count.
pub fn tick_uniform_lanes(
    cores: &mut [&mut NeurosynapticCore],
    tick: u64,
    kernel: &mut LaneSwarKernel,
) -> Vec<Vec<u16>> {
    let lanes = cores.len();
    assert!(lanes <= kernel.lanes(), "kernel too narrow for lane count");
    let Some(first) = cores.first() else {
        return Vec::new();
    };
    let axons = first.axons();
    let neurons = first.neurons();
    let words = first.bitmap.len();
    let universe: u64 = if lanes == 64 {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    };
    for core in cores.iter() {
        assert_eq!(tick, core.now, "core evaluated out of tick order");
        assert_eq!(core.axons(), axons, "lanes must agree on axon count");
        assert_eq!(core.neurons(), neurons, "lanes must agree on neuron count");
        assert!(core.fusible_uniform(), "core not fusible");
        debug_assert!(
            core.faults
                .as_deref()
                .is_none_or(|f| f.structural.neurons_dead == 0 && f.stuck.is_empty()),
            "fusible core must carry no per-tick fault masks"
        );
    }

    // A dormant lane joining a fused tick has work arriving (or a sibling
    // lane does); expand it so the lane views below see real planes.
    for core in cores.iter_mut() {
        core.materialize();
    }

    // Phase 0: drain each lane's scheduler for this tick into its bitmap.
    for core in cores.iter_mut() {
        core.scheduler.take_into(tick, &mut core.bitmap);
    }

    // Phase 1: one union walk over the due-axon bitmaps. Each active
    // axon's lane mask goes to the lane kernel, which picks direct or
    // union-complement insertion per axon; the census charges each lane
    // exactly what its solo tick would have charged.
    let mut axon_events = vec![0u64; lanes];
    let mut synaptic_events = vec![0u64; lanes];
    for w in 0..words {
        let mut union = 0u64;
        for core in cores.iter() {
            union |= core.bitmap[w];
        }
        while union != 0 {
            let bit = union.trailing_zeros();
            union &= union - 1;
            let axon = w * 64 + bit as usize;
            let mut mask = 0u64;
            for (lane, core) in cores.iter().enumerate() {
                mask |= ((core.bitmap[w] >> bit) & 1) << lane;
            }
            let popcount = u64::from(cores[0].crossbar.row_popcount(axon));
            let mut m = mask;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                m &= m - 1;
                axon_events[lane] += 1;
                synaptic_events[lane] += popcount;
            }
            kernel.accumulate_row_lanes(
                cores[0].axon_types[axon].index(),
                cores[0].crossbar.row_words(axon),
                mask,
                universe,
            );
        }
    }
    kernel.flush_shared();
    for (lane, core) in cores.iter_mut().enumerate() {
        let soa = core.soa.as_deref_mut().expect("fusible core has soa");
        kernel.flush_lane(lane, &mut soa.counts);
    }

    // Phase 2: the batched population scan, sweeping every lane's copy of
    // a 64-neuron block before the next block.
    let params = *cores[0]
        .soa
        .as_deref()
        .expect("fusible core has soa")
        .params
        .get(0);
    debug_assert!(
        cores.iter().all(|core| {
            *core
                .soa
                .as_deref()
                .expect("fusible core has soa")
                .params
                .get(0)
                == params
        }),
        "lanes must share the uniform parameter block"
    );
    let mut views: Vec<LaneScan<'_>> = cores
        .iter_mut()
        .map(|core| {
            let soa = core.soa.as_deref_mut().expect("fusible core has soa");
            LaneScan {
                potentials: &mut soa.potentials,
                counts: &soa.counts,
                flags: &mut soa.flags,
            }
        })
        .collect();
    deterministic_scan_uniform_lanes(&params, &mut views);
    drop(views);

    // Epilogue per lane: harvest, settle, account — the same statements,
    // in the same order, as the solo tick's uniform branch.
    let mut results = Vec::with_capacity(lanes);
    for (lane, core) in cores.iter_mut().enumerate() {
        let mut fired = Vec::new();
        let soa = core.soa.as_deref().expect("fusible core has soa");
        let unsettled = harvest_scan_flags(&soa.flags, &mut fired);
        core.settled = axon_events[lane] == 0 && fired.is_empty() && !unsettled;
        core.stats.ticks += 1;
        core.stats.axon_events += axon_events[lane];
        core.stats.synaptic_events += synaptic_events[lane];
        core.stats.neuron_updates += core.n_neurons as u64;
        core.stats.spikes += fired.len() as u64;
        core.now += 1;
        results.push(fired);
    }
    results
}

/// Serializable image of the fault state injected into one core, the public
/// mirror of the private per-core fault mask. Captured by
/// [`NeurosynapticCore::export_state`] so a restored core degrades exactly
/// like the original — structural crossbar damage is already burned into the
/// exported crossbar words, while the behavioural masks (dropout, dead,
/// stuck-firing) and the structural counters travel here.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreFaultsState {
    /// Whole-core dropout: the core consumes events but never evaluates.
    pub dropped: bool,
    /// Per-neuron "never fires" mask, index-aligned with the neuron array.
    pub dead: Vec<bool>,
    /// Sorted (strictly increasing) list of stuck-firing neuron indices.
    pub stuck: Vec<u16>,
    /// Structural fault counts, re-seeded into the statistics on reset.
    pub structural: FaultStats,
}

/// Complete runtime image of one [`NeurosynapticCore`]: configuration
/// (axon types, neuron parameter blocks, destinations, crossbar) plus all
/// mutable state (membrane potentials, scheduler ring, LFSR, tick cursor,
/// statistics, fault masks). [`NeurosynapticCore::import_state`] rebuilds a
/// core that continues bit-identically from the capture point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreState {
    /// Number of axons.
    pub axons: usize,
    /// Number of neurons.
    pub neurons: usize,
    /// Per-axon type tags (`axons` entries).
    pub axon_types: Vec<AxonType>,
    /// Per-neuron parameter blocks (`neurons` entries).
    pub configs: Vec<NeuronConfig>,
    /// Per-neuron spike destinations (`neurons` entries).
    pub destinations: Vec<Destination>,
    /// Packed crossbar rows, row-major: `axons × neurons.div_ceil(64)`
    /// words. Stuck-at fault damage is included (it is burned into the
    /// live crossbar at injection time).
    pub crossbar_words: Vec<u64>,
    /// Membrane potentials read through the current authority (scalar
    /// neurons or the SoA fast path), `neurons` entries.
    pub potentials: Vec<i32>,
    /// Scheduler ring, slot-major: `SCHEDULER_SLOTS × axons.div_ceil(64)`
    /// words; slot `s` holds the axons due at ticks ≡ s (mod 16).
    pub scheduler_slots: Vec<u64>,
    /// The core LFSR's exact 32-bit state (never zero on a live core).
    pub rng_state: u32,
    /// Evaluation strategy in effect.
    pub strategy: EvalStrategy,
    /// Tick cursor (the next tick the core will evaluate).
    pub now: u64,
    /// Cumulative event statistics, including fault counters.
    pub stats: CoreStats,
    /// Cached zero-input fixed-point flag from the last evaluated tick.
    pub settled: bool,
    /// Injected fault masks, if a plan touched this core.
    pub faults: Option<CoreFaultsState>,
}

/// Error from [`NeurosynapticCore::import_state`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreStateError {
    /// A field failed the builder's own configuration validation.
    Build(CoreBuildError),
    /// A vector length, tail bit or index is inconsistent with the
    /// declared core dimensions.
    Shape(&'static str),
}

impl fmt::Display for CoreStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreStateError::Build(e) => write!(f, "core state rejected by builder: {e}"),
            CoreStateError::Shape(what) => write!(f, "malformed core state: {what}"),
        }
    }
}

impl std::error::Error for CoreStateError {}

impl From<CoreBuildError> for CoreStateError {
    fn from(e: CoreBuildError) -> CoreStateError {
        CoreStateError::Build(e)
    }
}

impl NeurosynapticCore {
    /// Captures the complete runtime image of this core.
    ///
    /// The export is strategy-agnostic: membrane potentials are read
    /// through whichever representation currently owns them, so a core
    /// captured on the SoA fast path and restored under `force-scalar`
    /// (or vice versa) continues bit-identically.
    pub fn export_state(&self) -> CoreState {
        let axons = self.axons();
        let neurons = self.neurons();
        let mut crossbar_words = Vec::with_capacity(axons * neurons.div_ceil(64));
        for axon in 0..axons {
            crossbar_words.extend_from_slice(self.crossbar.row_words(axon));
        }
        let mut scheduler_slots = Vec::with_capacity(SCHEDULER_SLOTS * axons.div_ceil(64));
        for slot in 0..SCHEDULER_SLOTS {
            scheduler_slots.extend_from_slice(self.scheduler.peek(slot as u64));
        }
        CoreState {
            axons,
            neurons,
            axon_types: self.axon_types.clone(),
            // A dormant core synthesises its per-neuron tables from the
            // shared pair — the export is indistinguishable from that of
            // its materialised twin.
            configs: match self.dormant.as_deref() {
                Some(d) => vec![d.config.clone(); neurons],
                None => self.neurons.iter().map(|n| n.config().clone()).collect(),
            },
            destinations: match self.dormant.as_deref() {
                Some(d) => vec![d.destination; neurons],
                None => self.destinations.clone(),
            },
            crossbar_words,
            potentials: (0..neurons).map(|n| self.potential(n)).collect(),
            scheduler_slots,
            rng_state: self.rng.state(),
            strategy: self.strategy,
            now: self.now,
            stats: self.stats,
            settled: self.settled,
            faults: self.faults.as_deref().map(|f| CoreFaultsState {
                dropped: f.dropped,
                dead: f.dead.clone(),
                stuck: f.stuck.clone(),
                structural: f.structural,
            }),
        }
    }

    /// Rebuilds a core from an exported image.
    ///
    /// Every field is validated before use — vector lengths against the
    /// declared dimensions, packed-word tail bits, destination delays
    /// (through the builder), fault-mask indices — so arbitrary (e.g.
    /// corrupted) state is rejected with a typed error instead of
    /// panicking. A valid export round-trips exactly:
    /// `import_state(&core.export_state())` continues bit-identically to
    /// `core` under any strategy and thread count.
    ///
    /// # Errors
    ///
    /// [`CoreStateError::Shape`] for dimension/length/index inconsistencies,
    /// [`CoreStateError::Build`] when a field fails builder validation.
    pub fn import_state(state: &CoreState) -> Result<NeurosynapticCore, CoreStateError> {
        if state.axons == 0 || state.neurons == 0 {
            return Err(CoreStateError::Shape("zero core dimension"));
        }
        if state.axon_types.len() != state.axons {
            return Err(CoreStateError::Shape("axon_types length"));
        }
        if state.configs.len() != state.neurons {
            return Err(CoreStateError::Shape("configs length"));
        }
        if state.destinations.len() != state.neurons {
            return Err(CoreStateError::Shape("destinations length"));
        }
        if state.potentials.len() != state.neurons {
            return Err(CoreStateError::Shape("potentials length"));
        }
        let xb_words = state.neurons.div_ceil(64);
        if state.crossbar_words.len() != state.axons * xb_words {
            return Err(CoreStateError::Shape("crossbar word count"));
        }
        let neuron_lanes = state.neurons - (xb_words - 1) * 64;
        if neuron_lanes < 64 {
            for row in state.crossbar_words.chunks_exact(xb_words) {
                if row[xb_words - 1] >> neuron_lanes != 0 {
                    return Err(CoreStateError::Shape("crossbar tail bits"));
                }
            }
        }
        let sched_words = state.axons.div_ceil(64);
        if state.scheduler_slots.len() != SCHEDULER_SLOTS * sched_words {
            return Err(CoreStateError::Shape("scheduler word count"));
        }
        let axon_lanes = state.axons - (sched_words - 1) * 64;
        if axon_lanes < 64 {
            for slot in state.scheduler_slots.chunks_exact(sched_words) {
                if slot[sched_words - 1] >> axon_lanes != 0 {
                    return Err(CoreStateError::Shape("scheduler tail bits"));
                }
            }
        }
        if let Some(f) = &state.faults {
            if f.dead.len() != state.neurons {
                return Err(CoreStateError::Shape("fault dead-mask length"));
            }
            if !f.stuck.windows(2).all(|pair| pair[0] < pair[1]) {
                return Err(CoreStateError::Shape("fault stuck list not sorted"));
            }
            if f.stuck.last().is_some_and(|&n| n as usize >= state.neurons) {
                return Err(CoreStateError::Shape("fault stuck index out of range"));
            }
        }

        let mut b = CoreBuilder::new(state.axons, state.neurons);
        for (a, &ty) in state.axon_types.iter().enumerate() {
            b.axon_type(a, ty)?;
        }
        for (n, (config, &dest)) in state.configs.iter().zip(&state.destinations).enumerate() {
            b.neuron(n, config.clone(), dest)?;
        }
        b.seed(state.rng_state).strategy(state.strategy);
        let mut core = b.build();
        // Restore the crossbar words directly (the exported image already
        // contains any burned-in stuck-at damage); tail bits were checked
        // above, so `set` cannot panic. Going through `set` keeps the
        // per-row popcount caches exact.
        for (a, row) in state.crossbar_words.chunks_exact(xb_words).enumerate() {
            for (wi, &word) in row.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let n = wi * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    core.crossbar.set(a, n, true);
                }
            }
        }
        // Refill the scheduler ring slot by slot; `schedule_word` panics on
        // tail bits or bad word indices, both excluded above.
        for (s, slot) in state.scheduler_slots.chunks_exact(sched_words).enumerate() {
            for (w, &bits) in slot.iter().enumerate() {
                if bits != 0 {
                    core.scheduler.schedule_word(w, bits, s as u64);
                }
            }
        }
        // Faults and nonzero potentials both live in per-neuron state a
        // dormant core does not carry; expand before loading either.
        if state.faults.is_some() || state.potentials.iter().any(|&v| v != 0) {
            core.materialize();
        }
        if let Some(f) = &state.faults {
            // Mirror `apply_faults`: behavioural neuron faults veto the SoA
            // fast path for good (structural crossbar damage and dropout do
            // not — the kernel reads the burned bits, dropout never reaches
            // phase 2).
            let veto = f.structural.neurons_dead > 0 || !f.stuck.is_empty();
            core.faults = Some(Box::new(CoreFaults {
                dropped: f.dropped,
                dead: f.dead.clone(),
                stuck: f.stuck.clone(),
                structural: f.structural,
            }));
            if veto {
                core.retire_fast_path();
            }
        }
        // Load the potentials through whichever representation owns them
        // now; out-of-rail values (impossible in a genuine export) clamp
        // exactly as `set_potential` would.
        if core.soa_live() {
            if let Some(soa) = core.soa.as_deref_mut() {
                for (slot, &v) in soa.potentials.iter_mut().zip(&state.potentials) {
                    *slot = v.clamp(
                        brainsim_neuron::POTENTIAL_MIN,
                        brainsim_neuron::POTENTIAL_MAX,
                    );
                }
            }
        } else {
            for (neuron, &v) in core.neurons.iter_mut().zip(&state.potentials) {
                neuron.set_potential(v);
            }
        }
        core.now = state.now;
        core.stats = state.stats;
        core.settled = state.settled;
        Ok(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spike::AxonTarget;
    use brainsim_neuron::Weight;

    fn relay_config(weight: i32, threshold: u32) -> NeuronConfig {
        NeuronConfig::builder()
            .weight(AxonType::A0, Weight::saturating(weight))
            .weight(AxonType::A3, Weight::saturating(-weight))
            .threshold(threshold)
            .build()
            .unwrap()
    }

    fn one_to_one_core(n: usize, strategy: EvalStrategy) -> NeurosynapticCore {
        let mut b = CoreBuilder::new(n, n);
        for i in 0..n {
            b.neuron(i, relay_config(1, 1), Destination::Output(i as u32))
                .unwrap();
            b.synapse(i, i, true).unwrap();
        }
        b.strategy(strategy);
        b.build()
    }

    /// A uniform deterministic core with a pseudo-random crossbar, the
    /// replica shape the batched lane tick fuses.
    fn uniform_random_core(n: usize, seed: u64) -> NeurosynapticCore {
        let mut b = CoreBuilder::new(n, n);
        let cfg = NeuronConfig::builder()
            .weight(AxonType::A0, Weight::saturating(5))
            .weight(AxonType::A1, Weight::saturating(-2))
            .threshold(9)
            .leak(-1)
            .negative_threshold(20)
            .build()
            .unwrap();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for a in 0..n {
            b.axon_type(a, AxonType::from_index(a % 2).unwrap())
                .unwrap();
        }
        for i in 0..n {
            b.neuron(i, cfg.clone(), Destination::Output(i as u32))
                .unwrap();
        }
        for a in 0..n {
            for i in 0..n {
                if next() % 3 == 0 {
                    b.synapse(a, i, true).unwrap();
                }
            }
        }
        b.build()
    }

    #[test]
    fn fused_lane_tick_matches_solo_ticks_bit_identically() {
        // N replica cores (identical wiring, per-lane event streams) run
        // 30 ticks through the fused lane tick; their solo twins run the
        // ordinary per-core tick. Fired lists, statistics, settled flags
        // and final state images must all agree bit for bit.
        if FORCE_SCALAR {
            // The fused path refuses to engage under force-scalar
            // (fusible_uniform is false); nothing to differentiate.
            return;
        }
        for lanes in [1usize, 2, 3, 8] {
            let n = 70; // a ragged width: one full word plus a tail
            let mut fused: Vec<NeurosynapticCore> = (0..lanes)
                .map(|_| uniform_random_core(n, 0xC0FFEE))
                .collect();
            let solo: Vec<NeurosynapticCore> = fused.to_vec();
            let mut solo = solo;
            let mut kernel = LaneSwarKernel::new(n, lanes);
            let mut drive = 0x5EED_u64 ^ (lanes as u64) << 32;
            let mut next = move || {
                drive ^= drive << 13;
                drive ^= drive >> 7;
                drive ^= drive << 17;
                drive
            };
            for t in 0..30u64 {
                for lane in 0..lanes {
                    // Per-lane Bernoulli word drive, identical to both twins.
                    for w in 0..n.div_ceil(64) {
                        let bits = next() & next();
                        let width = (n - w * 64).min(64);
                        let m = if width == 64 {
                            u64::MAX
                        } else {
                            (1 << width) - 1
                        };
                        fused[lane].deliver_word(w, bits & m, t + 1).unwrap();
                        solo[lane].deliver_word(w, bits & m, t + 1).unwrap();
                    }
                }
                let mut refs: Vec<&mut NeurosynapticCore> = fused.iter_mut().collect();
                let fired_fused = tick_uniform_lanes(&mut refs, t, &mut kernel);
                for lane in 0..lanes {
                    let fired_solo = solo[lane].tick(t);
                    assert_eq!(
                        fired_fused[lane], fired_solo,
                        "lanes={lanes} lane={lane} tick={t}"
                    );
                }
            }
            for lane in 0..lanes {
                assert_eq!(fused[lane].stats(), solo[lane].stats(), "lane {lane} stats");
                assert_eq!(
                    fused[lane].export_state(),
                    solo[lane].export_state(),
                    "lane {lane} state image"
                );
                assert_eq!(fused[lane].is_quiescent(), solo[lane].is_quiescent());
            }
        }
    }

    #[test]
    fn identity_core_relays_spikes() {
        let mut core = one_to_one_core(8, EvalStrategy::Sparse);
        core.deliver(3, 0).unwrap();
        core.deliver(5, 1).unwrap();
        assert_eq!(core.tick(0), vec![3]);
        assert_eq!(core.tick(1), vec![5]);
        assert_eq!(core.tick(2), Vec::<u16>::new());
    }

    #[test]
    fn deliver_validation() {
        let mut core = one_to_one_core(4, EvalStrategy::Sparse);
        assert_eq!(core.deliver(4, 0), Err(DeliverError::NoSuchAxon(4)));
        assert_eq!(core.deliver(0, 16), Err(DeliverError::DelayTooLong(16)));
        core.tick(0);
        // Past ticks are rejected too.
        assert!(matches!(
            core.deliver(0, 0),
            Err(DeliverError::DelayTooLong(_))
        ));
    }

    #[test]
    fn deliver_word_matches_per_axon_deliver() {
        let mut per_axon = one_to_one_core(8, EvalStrategy::Sparse);
        let mut burst = one_to_one_core(8, EvalStrategy::Sparse);
        let bits = 0b1010_0110u64;
        for b in 0..8 {
            if bits & (1 << b) != 0 {
                per_axon.deliver(b as usize, 2).unwrap();
            }
        }
        burst.deliver_word(0, bits, 2).unwrap();
        for t in 0..4 {
            assert_eq!(per_axon.tick(t), burst.tick(t), "tick {t}");
        }
    }

    #[test]
    fn deliver_word_validation() {
        let mut core = one_to_one_core(4, EvalStrategy::Sparse);
        // Bit 4 addresses past the 4-axon core.
        assert_eq!(
            core.deliver_word(0, 0b1_0001, 0),
            Err(DeliverError::NoSuchAxon(4))
        );
        assert_eq!(
            core.deliver_word(1, 1, 0),
            Err(DeliverError::NoSuchAxon(64))
        );
        assert_eq!(
            core.deliver_word(0, 1, 16),
            Err(DeliverError::DelayTooLong(16))
        );
        // An all-zero word inside the window is a cheap no-op.
        core.deliver_word(0, 0, 0).unwrap();
        assert_eq!(core.pending_events(), 0);
    }

    #[test]
    #[should_panic(expected = "tick order")]
    fn out_of_order_tick_panics() {
        let mut core = one_to_one_core(2, EvalStrategy::Sparse);
        core.tick(1);
    }

    #[test]
    fn fan_out_within_core() {
        // One axon drives all neurons.
        let n = 16;
        let mut b = CoreBuilder::new(1, n);
        for i in 0..n {
            b.neuron(i, relay_config(1, 1), Destination::Disabled)
                .unwrap();
            b.synapse(0, i, true).unwrap();
        }
        let mut core = b.build();
        core.deliver(0, 0).unwrap();
        let fired = core.tick(0);
        assert_eq!(fired.len(), n);
        assert_eq!(core.stats().synaptic_events, n as u64);
        assert_eq!(core.stats().axon_events, 1);
    }

    #[test]
    fn axon_types_select_weights() {
        let mut b = CoreBuilder::new(2, 1);
        let config = NeuronConfig::builder()
            .weight(AxonType::A0, Weight::saturating(3))
            .weight(AxonType::A1, Weight::saturating(10))
            .threshold(13)
            .build()
            .unwrap();
        b.axon_type(0, AxonType::A0).unwrap();
        b.axon_type(1, AxonType::A1).unwrap();
        b.neuron(0, config, Destination::Disabled).unwrap();
        b.synapse(0, 0, true).unwrap();
        b.synapse(1, 0, true).unwrap();
        let mut core = b.build();
        core.deliver(0, 0).unwrap();
        core.deliver(1, 0).unwrap();
        let fired = core.tick(0);
        assert_eq!(fired, vec![0]); // 3 + 10 = 13 ≥ threshold
    }

    #[test]
    fn dense_and_sparse_agree_deterministic() {
        let mut dense = one_to_one_core(32, EvalStrategy::Dense);
        let mut sparse = one_to_one_core(32, EvalStrategy::Sparse);
        for t in 0..20u64 {
            for a in 0..32 {
                if (a + t as usize).is_multiple_of(3) {
                    dense.deliver(a, t).unwrap();
                    sparse.deliver(a, t).unwrap();
                }
            }
            assert_eq!(dense.tick(t), sparse.tick(t), "tick {t}");
        }
        assert_eq!(dense.stats(), sparse.stats());
    }

    #[test]
    fn dense_and_sparse_agree_stochastic() {
        // Stochastic synapses + stochastic threshold, identical seeds.
        let build = |strategy| {
            let mut b = CoreBuilder::new(16, 16);
            let config = NeuronConfig::builder()
                .weight(AxonType::A0, Weight::saturating(128))
                .stochastic_synapse(AxonType::A0, true)
                .threshold(2)
                .threshold_mask_bits(2)
                .build()
                .unwrap();
            for i in 0..16 {
                b.neuron(i, config.clone(), Destination::Disabled).unwrap();
                for a in 0..16 {
                    b.synapse(a, i, (a + i) % 2 == 0).unwrap();
                }
            }
            b.seed(0xABCD).strategy(strategy);
            b.build()
        };
        let mut dense = build(EvalStrategy::Dense);
        let mut sparse = build(EvalStrategy::Sparse);
        for t in 0..50u64 {
            for a in 0..16 {
                if a % 2 == 0 {
                    dense.deliver(a, t).unwrap();
                    sparse.deliver(a, t).unwrap();
                }
            }
            assert_eq!(dense.tick(t), sparse.tick(t), "tick {t}");
        }
    }

    /// Drives two cores with the same spike pattern and asserts identical
    /// rasters, stats and potentials tick by tick.
    fn assert_cores_agree(a: &mut NeurosynapticCore, b: &mut NeurosynapticCore, ticks: u64) {
        for t in 0..ticks {
            for axon in 0..a.axons() {
                if (axon + t as usize).is_multiple_of(3) {
                    a.deliver(axon, t).unwrap();
                    b.deliver(axon, t).unwrap();
                }
            }
            assert_eq!(a.tick(t), b.tick(t), "tick {t}");
        }
        assert_eq!(a.stats(), b.stats());
        for n in 0..a.neurons() {
            assert_eq!(a.potential(n), b.potential(n), "neuron {n}");
        }
    }

    #[test]
    fn swar_agrees_with_scalar_strategies_deterministic() {
        for reference in [EvalStrategy::Dense, EvalStrategy::Sparse] {
            let mut swar = one_to_one_core(32, EvalStrategy::Swar);
            let mut scalar = one_to_one_core(32, reference);
            assert!(swar.soa.is_some(), "relay cores are fast-path eligible");
            assert_cores_agree(&mut swar, &mut scalar, 20);
        }
    }

    #[test]
    fn swar_heterogeneous_deterministic_core_takes_per_neuron_path() {
        // Deterministic but *non-uniform* parameters (thresholds vary per
        // neuron): SoA-eligible, yet the vectorised population scan must
        // stand down in favour of the per-neuron walk — and still agree
        // with the scalar reference bit for bit.
        let build = |strategy| {
            let mut b = CoreBuilder::new(24, 24);
            for i in 0..24 {
                let config = NeuronConfig::builder()
                    .weight(AxonType::A0, Weight::saturating(3))
                    .weight(AxonType::A2, Weight::saturating(-2))
                    .threshold(5 + (i as u32 % 7))
                    .leak(-(i as i32 % 3))
                    .leak_reversal(i % 2 == 0)
                    .build()
                    .unwrap();
                b.neuron(i, config, Destination::Disabled).unwrap();
                for a in 0..24 {
                    b.axon_type(a, AxonType::from_index(a % 4).unwrap())
                        .unwrap();
                    b.synapse(a, i, (a * 7 + i * 3) % 4 == 0).unwrap();
                }
            }
            b.strategy(strategy);
            b.build()
        };
        let mut swar = build(EvalStrategy::Swar);
        let soa = swar.soa.as_deref().expect("deterministic core is eligible");
        assert!(!soa.uniform, "heterogeneous params must not claim the scan");
        let mut sparse = build(EvalStrategy::Sparse);
        assert_cores_agree(&mut swar, &mut sparse, 40);
    }

    #[test]
    fn swar_agrees_with_scalar_on_stochastic_core() {
        // A single stochastic neuron disqualifies the SoA fast path, but the
        // word-parallel phase 1 must still reproduce the exact LFSR draw
        // sequence of the scalar paths.
        let build = |strategy| {
            let mut b = CoreBuilder::new(16, 16);
            let stochastic = NeuronConfig::builder()
                .weight(AxonType::A0, Weight::saturating(128))
                .stochastic_synapse(AxonType::A0, true)
                .threshold(2)
                .threshold_mask_bits(2)
                .build()
                .unwrap();
            for i in 0..16 {
                b.neuron(i, stochastic.clone(), Destination::Disabled)
                    .unwrap();
                for a in 0..16 {
                    b.synapse(a, i, (a + i) % 2 == 0).unwrap();
                }
            }
            b.seed(0xABCD).strategy(strategy);
            b.build()
        };
        let mut swar = build(EvalStrategy::Swar);
        assert!(swar.soa.is_none(), "stochastic cores are not eligible");
        let mut sparse = build(EvalStrategy::Sparse);
        assert_cores_agree(&mut swar, &mut sparse, 50);
    }

    #[test]
    fn swar_fast_path_handles_leaky_ragged_core() {
        // 70 neurons (ragged last word) with leak, reversal and a negative
        // floor: long-running potentials must match the scalar walk exactly.
        let build = |strategy| {
            let mut b = CoreBuilder::new(70, 70);
            let config = NeuronConfig::builder()
                .weight(AxonType::A0, Weight::saturating(5))
                .weight(AxonType::A1, Weight::saturating(-3))
                .threshold(17)
                .leak(-1)
                .leak_reversal(true)
                .negative_threshold(9)
                .build()
                .unwrap();
            for a in 0..70 {
                b.axon_type(
                    a,
                    if a % 2 == 0 {
                        AxonType::A0
                    } else {
                        AxonType::A1
                    },
                )
                .unwrap();
                for n in 0..70 {
                    b.synapse(a, n, (a * 7 + n) % 5 == 0).unwrap();
                }
            }
            for n in 0..70 {
                b.neuron(n, config.clone(), Destination::Disabled).unwrap();
            }
            b.strategy(strategy);
            b.build()
        };
        let mut swar = build(EvalStrategy::Swar);
        let mut sparse = build(EvalStrategy::Sparse);
        assert_cores_agree(&mut swar, &mut sparse, 60);
    }

    #[test]
    fn strategy_switch_carries_potentials_both_ways() {
        // Accumulate potential on the fast path, switch to the scalar path
        // mid-run, then back; the trajectory must match a core that never
        // switched.
        let config = NeuronConfig::builder()
            .weight(AxonType::A0, Weight::saturating(3))
            .threshold(100)
            .build()
            .unwrap();
        let build = || {
            let mut b = CoreBuilder::new(4, 4);
            for n in 0..4 {
                b.neuron(n, config.clone(), Destination::Disabled).unwrap();
                b.synapse(n, n, true).unwrap();
            }
            b.strategy(EvalStrategy::Swar);
            b.build()
        };
        let mut switching = build();
        let mut straight = build();
        for t in 0..12u64 {
            match t {
                4 => switching.set_strategy(EvalStrategy::Sparse),
                8 => switching.set_strategy(EvalStrategy::Swar),
                _ => {}
            }
            switching.deliver(1, t).unwrap();
            straight.deliver(1, t).unwrap();
            assert_eq!(switching.tick(t), straight.tick(t), "tick {t}");
            assert_eq!(switching.potential(1), straight.potential(1), "tick {t}");
        }
        assert_eq!(switching.potential(1), 36);
    }

    #[test]
    fn neuron_faults_retire_fast_path_with_state_intact() {
        use brainsim_faults::FaultPlan;
        let mut core = one_to_one_core(8, EvalStrategy::Swar);
        let config = NeuronConfig::builder()
            .weight(AxonType::A0, Weight::saturating(1))
            .threshold(50)
            .build()
            .unwrap();
        let mut b = CoreBuilder::new(8, 8);
        for n in 0..8 {
            b.neuron(n, config.clone(), Destination::Disabled).unwrap();
            b.synapse(n, n, true).unwrap();
        }
        b.strategy(EvalStrategy::Swar);
        let mut core2 = b.build();
        core2.deliver(3, 0).unwrap();
        core2.tick(0);
        assert_eq!(core2.potential(3), 1);
        core2.apply_faults(
            &FaultInjector::new(&FaultPlan::new(7).with_stuck_neuron(1.0)),
            0,
            0,
        );
        assert!(core2.soa.is_none(), "neuron faults veto the fast path");
        assert_eq!(core2.potential(3), 1, "potential migrated on retirement");
        assert_eq!(core2.tick(1).len(), 8, "stuck mask applies");
        // Dropout and crossbar stuck-at faults do NOT veto.
        core.apply_faults(
            &FaultInjector::new(&FaultPlan::new(9).with_synapse_stuck_zero(0.5)),
            0,
            0,
        );
        assert!(core.soa.is_some(), "synapse faults burn into the crossbar");
    }

    #[test]
    fn swar_quiescence_skip_is_bit_identical() {
        // Leak-reversal core on the fast path: settled detection must come
        // from the pure quiescence test and skip_tick must stay equivalent.
        let config = NeuronConfig::builder()
            .weight(AxonType::A0, Weight::saturating(4))
            .threshold(3)
            .leak(-1)
            .leak_reversal(true)
            .build()
            .unwrap();
        let mut b = CoreBuilder::new(4, 4);
        for n in 0..4 {
            b.neuron(n, config.clone(), Destination::Disabled).unwrap();
            b.synapse(n, n, true).unwrap();
        }
        b.strategy(EvalStrategy::Swar);
        let mut core = b.build();
        assert!(core.is_quiescent(), "at rest with reversal leak");
        core.deliver(2, 0).unwrap();
        core.tick(0); // fires and resets; leak then decays any residue
        while !core.is_quiescent() {
            let t = core.now();
            core.tick(t);
        }
        let mut skipped = core.clone();
        let base = core.now();
        for t in base..base + 10 {
            core.tick(t);
            skipped.skip_tick(t);
        }
        assert_eq!(core.stats(), skipped.stats());
        for n in 0..4 {
            assert_eq!(core.potential(n), skipped.potential(n));
        }
    }

    #[test]
    fn delayed_delivery_through_scheduler() {
        let mut core = one_to_one_core(4, EvalStrategy::Sparse);
        core.deliver(1, 7).unwrap();
        for t in 0..7 {
            assert!(core.tick(t).is_empty(), "tick {t}");
        }
        assert_eq!(core.tick(7), vec![1]);
    }

    #[test]
    fn reset_clears_state_but_keeps_wiring() {
        let mut core = one_to_one_core(4, EvalStrategy::Sparse);
        core.deliver(0, 0).unwrap();
        core.tick(0);
        assert_eq!(core.stats().spikes, 1);
        core.reset();
        assert_eq!(core.now(), 0);
        assert_eq!(core.stats().spikes, 0);
        assert!(core.is_idle());
        core.deliver(0, 0).unwrap();
        assert_eq!(core.tick(0), vec![0]);
    }

    #[test]
    fn builder_validation() {
        let mut b = CoreBuilder::new(4, 4);
        assert!(matches!(
            b.axon_type(4, AxonType::A0),
            Err(CoreBuildError::NoSuchAxon(4))
        ));
        assert!(matches!(
            b.neuron(4, NeuronConfig::default(), Destination::Disabled),
            Err(CoreBuildError::NoSuchNeuron(4))
        ));
        assert!(matches!(
            b.synapse(0, 9, true),
            Err(CoreBuildError::NoSuchNeuron(9))
        ));
        let bad = Destination::Axon(AxonTarget::local(0, 0));
        assert!(matches!(
            b.neuron(0, NeuronConfig::default(), bad),
            Err(CoreBuildError::BadDelay(0))
        ));
        let bad16 = Destination::Axon(AxonTarget::local(0, 16));
        assert!(matches!(
            b.neuron(0, NeuronConfig::default(), bad16),
            Err(CoreBuildError::BadDelay(16))
        ));
    }

    #[test]
    fn dead_neurons_suppress_spikes() {
        use brainsim_faults::FaultPlan;
        let mut core = one_to_one_core(8, EvalStrategy::Sparse);
        core.apply_faults(
            &FaultInjector::new(&FaultPlan::new(1).with_dead_neuron(1.0)),
            0,
            0,
        );
        for a in 0..8 {
            core.deliver(a, 0).unwrap();
        }
        assert_eq!(core.tick(0), Vec::<u16>::new());
        assert_eq!(core.stats().faults.neurons_dead, 8);
        assert_eq!(core.stats().faults.spikes_suppressed, 8);
        assert_eq!(core.stats().spikes, 0);
    }

    #[test]
    fn stuck_neurons_fire_every_tick_in_order() {
        use brainsim_faults::FaultPlan;
        let mut core = one_to_one_core(8, EvalStrategy::Sparse);
        core.apply_faults(
            &FaultInjector::new(&FaultPlan::new(1).with_stuck_neuron(1.0)),
            0,
            0,
        );
        // Neuron 3 would fire naturally; all 8 must appear exactly once, sorted.
        core.deliver(3, 0).unwrap();
        let fired = core.tick(0);
        assert_eq!(fired, (0..8).collect::<Vec<u16>>());
        assert_eq!(core.stats().faults.spikes_forced, 7);
        assert!(core.tick(1).len() == 8);
    }

    #[test]
    fn dropped_core_consumes_events_silently() {
        use brainsim_faults::FaultPlan;
        let mut core = one_to_one_core(4, EvalStrategy::Sparse);
        core.apply_faults(
            &FaultInjector::new(&FaultPlan::new(1).with_core_dropout(1.0)),
            2,
            3,
        );
        assert!(core.is_dropped());
        core.deliver(0, 0).unwrap();
        assert_eq!(core.tick(0), Vec::<u16>::new());
        assert_eq!(core.stats().faults.cores_dropped, 1);
        assert_eq!(core.stats().spikes, 0);
        assert_eq!(core.now(), 1);
    }

    #[test]
    fn stuck_at_faults_burn_into_crossbar() {
        use brainsim_faults::FaultPlan;
        let mut core = one_to_one_core(8, EvalStrategy::Sparse);
        core.apply_faults(
            &FaultInjector::new(&FaultPlan::new(1).with_synapse_stuck_zero(1.0)),
            0,
            0,
        );
        // Every programmed synapse was severed; spikes can no longer relay.
        assert_eq!(core.stats().faults.synapses_stuck_zero, 8);
        core.deliver(0, 0).unwrap();
        assert_eq!(core.tick(0), Vec::<u16>::new());
    }

    #[test]
    fn benign_plan_leaves_core_untouched() {
        use brainsim_faults::FaultPlan;
        let mut healthy = one_to_one_core(8, EvalStrategy::Sparse);
        let mut injected = one_to_one_core(8, EvalStrategy::Sparse);
        injected.apply_faults(&FaultInjector::new(&FaultPlan::new(99)), 0, 0);
        for t in 0..10u64 {
            for a in 0..8 {
                if (a + t as usize).is_multiple_of(3) {
                    healthy.deliver(a, t).unwrap();
                    injected.deliver(a, t).unwrap();
                }
            }
            assert_eq!(healthy.tick(t), injected.tick(t));
        }
        assert_eq!(healthy.stats(), injected.stats());
    }

    #[test]
    fn reset_preserves_structural_fault_counts() {
        use brainsim_faults::FaultPlan;
        let mut core = one_to_one_core(8, EvalStrategy::Sparse);
        core.apply_faults(
            &FaultInjector::new(&FaultPlan::new(1).with_dead_neuron(1.0)),
            0,
            0,
        );
        core.deliver(0, 0).unwrap();
        core.tick(0);
        assert_eq!(core.stats().faults.spikes_suppressed, 1);
        core.reset();
        assert_eq!(
            core.stats().faults.neurons_dead,
            8,
            "structural counts survive"
        );
        assert_eq!(
            core.stats().faults.spikes_suppressed,
            0,
            "event counts cleared"
        );
    }

    #[test]
    fn quiescent_skip_is_bit_identical_to_full_evaluation() {
        let mut core = one_to_one_core(8, EvalStrategy::Sparse);
        // Fresh core at rest with leak-free neurons: settled from build.
        assert!(core.is_quiescent());
        core.deliver(2, 1).unwrap();
        assert!(!core.is_quiescent(), "pending event blocks quiescence");
        core.tick(0);
        core.tick(1); // consumes the event, fires neuron 2
        assert!(!core.is_quiescent(), "a firing tick cannot settle");
        core.tick(2); // idle tick re-establishes the fixed point
        assert!(core.is_quiescent());

        let mut skipped = core.clone();
        for t in 3..40 {
            core.tick(t);
            assert!(skipped.is_quiescent(), "tick {t}");
            skipped.skip_tick(t);
        }
        assert_eq!(core.stats(), skipped.stats());
        assert_eq!(core.now(), skipped.now());
        for n in 0..8 {
            assert_eq!(core.potential(n), skipped.potential(n));
        }
        // Both wake identically on new input.
        core.deliver(5, 40).unwrap();
        skipped.deliver(5, 40).unwrap();
        assert_eq!(core.tick(40), skipped.tick(40));
        assert_eq!(core.stats(), skipped.stats());
    }

    #[test]
    fn stochastic_modes_block_quiescence() {
        let build = |mask_bits: u32, leak: i32, stochastic_leak: bool| {
            let mut b = CoreBuilder::new(4, 4);
            let config = NeuronConfig::builder()
                .weight(AxonType::A0, Weight::saturating(1))
                .threshold(4)
                .threshold_mask_bits(mask_bits)
                .leak(leak)
                .leak_reversal(true)
                .stochastic_leak(stochastic_leak)
                .build()
                .unwrap();
            for n in 0..4 {
                b.neuron(n, config.clone(), Destination::Disabled).unwrap();
            }
            b.build()
        };
        // Threshold jitter draws every tick: never quiescent, even idle.
        let mut jitter = build(2, 0, false);
        jitter.tick(0);
        assert!(!jitter.is_quiescent());
        // Stochastic leak likewise.
        let mut stoch = build(0, -2, true);
        stoch.tick(0);
        assert!(!stoch.is_quiescent());
        // Deterministic leak with reversal at rest IS a fixed point.
        let mut reversal = build(0, -2, false);
        assert!(reversal.is_quiescent());
        reversal.tick(0);
        assert!(reversal.is_quiescent());
    }

    #[test]
    fn stuck_firing_neurons_block_quiescence() {
        use brainsim_faults::FaultPlan;
        let mut core = one_to_one_core(4, EvalStrategy::Sparse);
        core.apply_faults(
            &FaultInjector::new(&FaultPlan::new(1).with_stuck_neuron(1.0)),
            0,
            0,
        );
        core.tick(0);
        assert!(!core.is_quiescent(), "stuck-firing cores spike every tick");
    }

    #[test]
    fn dropped_core_skip_matches_tick_accounting() {
        use brainsim_faults::FaultPlan;
        let mut core = one_to_one_core(4, EvalStrategy::Sparse);
        core.apply_faults(
            &FaultInjector::new(&FaultPlan::new(1).with_core_dropout(1.0)),
            0,
            0,
        );
        assert!(
            core.is_quiescent(),
            "an idle dropped core is pure bookkeeping"
        );
        let mut skipped = core.clone();
        for t in 0..5 {
            core.tick(t);
            skipped.skip_tick(t);
        }
        assert_eq!(core.stats(), skipped.stats());
        assert_eq!(core.now(), skipped.now());
    }

    #[test]
    fn stats_accumulate_and_merge() {
        let mut core = one_to_one_core(4, EvalStrategy::Sparse);
        core.deliver(0, 0).unwrap();
        core.tick(0);
        core.tick(1);
        let s = *core.stats();
        assert_eq!(s.ticks, 2);
        assert_eq!(s.neuron_updates, 8);
        assert_eq!(s.spikes, 1);
        let mut total = CoreStats::default();
        total.merge(&s);
        total.merge(&s);
        assert_eq!(total.spikes, 2);
        assert_eq!(total.ticks, 4);
    }

    /// Runs a mid-flight export/import and asserts the restored core's
    /// remaining trajectory matches the original bit for bit.
    fn assert_state_round_trip(mut core: NeurosynapticCore, ticks: u64) {
        // Leave pending scheduler events and non-zero potentials in flight.
        for t in 0..ticks {
            for a in 0..core.axons() {
                if (a + t as usize).is_multiple_of(3) {
                    core.deliver(a, t + 1 + (a as u64 % 3)).unwrap();
                }
            }
            core.tick(t);
        }
        let state = core.export_state();
        assert_eq!(state, core.export_state(), "export is a pure read");
        let mut restored = NeurosynapticCore::import_state(&state).unwrap();
        assert_eq!(restored.export_state(), state, "import/export round-trips");
        for t in ticks..ticks + 24 {
            for a in 0..core.axons() {
                if (a * 5 + t as usize).is_multiple_of(7) {
                    core.deliver(a, t).unwrap();
                    restored.deliver(a, t).unwrap();
                }
            }
            assert_eq!(core.tick(t), restored.tick(t), "tick {t}");
        }
        assert_eq!(core.stats(), restored.stats());
        for n in 0..core.neurons() {
            assert_eq!(core.potential(n), restored.potential(n), "neuron {n}");
        }
    }

    #[test]
    fn state_round_trip_deterministic_swar() {
        assert_state_round_trip(one_to_one_core(70, EvalStrategy::Swar), 13);
    }

    #[test]
    fn state_round_trip_scalar_strategies() {
        assert_state_round_trip(one_to_one_core(32, EvalStrategy::Dense), 9);
        assert_state_round_trip(one_to_one_core(32, EvalStrategy::Sparse), 9);
    }

    #[test]
    fn state_round_trip_stochastic_core_preserves_lfsr() {
        let mut b = CoreBuilder::new(16, 16);
        let config = NeuronConfig::builder()
            .weight(AxonType::A0, Weight::saturating(128))
            .stochastic_synapse(AxonType::A0, true)
            .threshold(2)
            .threshold_mask_bits(2)
            .build()
            .unwrap();
        for i in 0..16 {
            b.neuron(i, config.clone(), Destination::Disabled).unwrap();
            for a in 0..16 {
                b.synapse(a, i, (a + i) % 2 == 0).unwrap();
            }
        }
        b.seed(0xABCD);
        assert_state_round_trip(b.build(), 17);
    }

    #[test]
    fn state_round_trip_faulted_core() {
        use brainsim_faults::FaultPlan;
        let mut core = one_to_one_core(24, EvalStrategy::Swar);
        core.apply_faults(
            &FaultInjector::new(
                &FaultPlan::new(5)
                    .with_dead_neuron(0.2)
                    .with_stuck_neuron(0.1)
                    .with_synapse_stuck_zero(0.1),
            ),
            1,
            2,
        );
        assert_state_round_trip(core, 11);
    }

    #[test]
    fn state_round_trip_dropped_core() {
        use brainsim_faults::FaultPlan;
        let mut core = one_to_one_core(8, EvalStrategy::Swar);
        core.apply_faults(
            &FaultInjector::new(&FaultPlan::new(1).with_core_dropout(1.0)),
            0,
            0,
        );
        assert_state_round_trip(core, 5);
    }

    #[test]
    fn import_rejects_malformed_state() {
        let core = one_to_one_core(70, EvalStrategy::Swar);
        let good = core.export_state();
        assert!(NeurosynapticCore::import_state(&good).is_ok());

        let mut bad = good.clone();
        bad.axons = 0;
        assert!(matches!(
            NeurosynapticCore::import_state(&bad),
            Err(CoreStateError::Shape("zero core dimension"))
        ));

        let mut bad = good.clone();
        bad.potentials.pop();
        assert!(matches!(
            NeurosynapticCore::import_state(&bad),
            Err(CoreStateError::Shape("potentials length"))
        ));

        // Tail bit past the 70-axon scheduler word (word 1 has 6 lanes).
        let mut bad = good.clone();
        let sched_words = 70usize.div_ceil(64);
        bad.scheduler_slots[sched_words - 1] |= 1 << 6;
        assert!(matches!(
            NeurosynapticCore::import_state(&bad),
            Err(CoreStateError::Shape("scheduler tail bits"))
        ));

        // Tail bit past the 70-neuron crossbar row.
        let mut bad = good.clone();
        let xb_words = 70usize.div_ceil(64);
        bad.crossbar_words[xb_words - 1] |= 1 << 6;
        assert!(matches!(
            NeurosynapticCore::import_state(&bad),
            Err(CoreStateError::Shape("crossbar tail bits"))
        ));

        // Unsorted stuck list.
        let mut bad = good.clone();
        bad.faults = Some(CoreFaultsState {
            dropped: false,
            dead: vec![false; 70],
            stuck: vec![3, 3],
            structural: FaultStats::default(),
        });
        assert!(matches!(
            NeurosynapticCore::import_state(&bad),
            Err(CoreStateError::Shape("fault stuck list not sorted"))
        ));

        // Stuck index past the neuron count.
        let mut bad = good.clone();
        bad.faults = Some(CoreFaultsState {
            dropped: false,
            dead: vec![false; 70],
            stuck: vec![70],
            structural: FaultStats::default(),
        });
        assert!(matches!(
            NeurosynapticCore::import_state(&bad),
            Err(CoreStateError::Shape("fault stuck index out of range"))
        ));

        // Destination delay validation flows through the builder.
        let mut bad = good;
        bad.destinations[0] = Destination::Axon(AxonTarget::local(0, 0));
        assert!(matches!(
            NeurosynapticCore::import_state(&bad),
            Err(CoreStateError::Build(CoreBuildError::BadDelay(0)))
        ));
    }
}
