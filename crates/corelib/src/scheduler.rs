//! The axonal-delay scheduler.

use serde::{Deserialize, Serialize};

/// Depth of the scheduler ring: axon events can be scheduled up to
/// `SCHEDULER_SLOTS − 1` ticks into the future.
pub const SCHEDULER_SLOTS: usize = 16;

/// A 16-deep ring of axon-event bitmaps.
///
/// The silicon holds a 16 × 256-bit SRAM: slot `t mod 16` records which
/// axons have an event due for integration at tick `t`. A spike packet
/// carries a 4-bit delivery slot; writing a slot more than once is idempotent
/// (axon events are binary, not counted).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scheduler {
    axons: usize,
    words: usize,
    /// `slots[s]` is the bitmap of axons due at ticks ≡ s (mod 16).
    slots: Vec<Vec<u64>>,
    /// Number of set bits across all slots, maintained incrementally so
    /// [`Scheduler::is_idle`] / [`Scheduler::pending`] are O(1) — the chip's
    /// active-core scheduler polls idleness every tick for every core.
    pending: usize,
}

impl Scheduler {
    /// Creates an empty scheduler for `axons` axons.
    ///
    /// # Panics
    ///
    /// Panics if `axons` is zero.
    pub fn new(axons: usize) -> Scheduler {
        assert!(axons > 0, "scheduler needs at least one axon");
        let words = axons.div_ceil(64);
        Scheduler {
            axons,
            words,
            slots: vec![vec![0; words]; SCHEDULER_SLOTS],
            pending: 0,
        }
    }

    /// Number of axons covered.
    #[inline]
    pub fn axons(&self) -> usize {
        self.axons
    }

    /// Records an event for `axon` in the slot for tick `target_tick`.
    ///
    /// The caller is responsible for ensuring `target_tick` is within the
    /// next `SCHEDULER_SLOTS − 1` ticks; the ring cannot distinguish farther
    /// targets (this invariant is enforced where packets are injected).
    ///
    /// # Panics
    ///
    /// Panics if `axon` is out of range.
    #[inline]
    pub fn schedule(&mut self, axon: usize, target_tick: u64) {
        assert!(axon < self.axons, "axon {axon} out of range");
        let slot = (target_tick % SCHEDULER_SLOTS as u64) as usize;
        let word = &mut self.slots[slot][axon / 64];
        let bit = 1u64 << (axon % 64);
        if *word & bit == 0 {
            self.pending += 1;
        }
        *word |= bit;
    }

    /// Takes (and clears) the axon bitmap due at `tick`.
    pub fn take(&mut self, tick: u64) -> Vec<u64> {
        let slot = (tick % SCHEDULER_SLOTS as u64) as usize;
        let mut empty = vec![0; self.words];
        std::mem::swap(&mut self.slots[slot], &mut empty);
        self.pending -= empty.iter().map(|w| w.count_ones() as usize).sum::<usize>();
        empty
    }

    /// Peeks at the axon bitmap due at `tick` without clearing it.
    pub fn peek(&self, tick: u64) -> &[u64] {
        let slot = (tick % SCHEDULER_SLOTS as u64) as usize;
        &self.slots[slot]
    }

    /// Whether any event is pending in any slot. O(1).
    pub fn is_idle(&self) -> bool {
        self.pending == 0
    }

    /// Total number of pending axon events across all slots. O(1).
    pub fn pending(&self) -> usize {
        self.pending
    }
}

/// Expands a bitmap into sorted axon indices.
pub(crate) fn bitmap_indices(bitmap: &[u64]) -> impl Iterator<Item = usize> + '_ {
    bitmap.iter().enumerate().flat_map(|(wi, &word)| {
        let mut w = word;
        std::iter::from_fn(move || {
            if w == 0 {
                None
            } else {
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + b)
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_and_take() {
        let mut s = Scheduler::new(256);
        s.schedule(3, 7);
        s.schedule(130, 7);
        s.schedule(3, 8);
        let due7: Vec<usize> = bitmap_indices(&s.take(7)).collect();
        assert_eq!(due7, vec![3, 130]);
        let due7_again: Vec<usize> = bitmap_indices(&s.take(7)).collect();
        assert!(due7_again.is_empty(), "take clears the slot");
        let due8: Vec<usize> = bitmap_indices(&s.take(8)).collect();
        assert_eq!(due8, vec![3]);
    }

    #[test]
    fn duplicate_schedule_is_idempotent() {
        let mut s = Scheduler::new(64);
        s.schedule(5, 2);
        s.schedule(5, 2);
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn ring_wraps_mod_16() {
        let mut s = Scheduler::new(8);
        s.schedule(1, 20); // slot 4
        let due: Vec<usize> = bitmap_indices(&s.take(4)).collect();
        assert_eq!(due, vec![1]);
    }

    #[test]
    fn idle_and_pending_track_events() {
        let mut s = Scheduler::new(8);
        assert!(s.is_idle());
        s.schedule(0, 0);
        s.schedule(7, 15);
        assert!(!s.is_idle());
        assert_eq!(s.pending(), 2);
        s.take(0);
        s.take(15);
        assert!(s.is_idle());
    }

    #[test]
    fn peek_does_not_clear() {
        let mut s = Scheduler::new(8);
        s.schedule(2, 1);
        assert_eq!(bitmap_indices(s.peek(1)).count(), 1);
        assert_eq!(bitmap_indices(s.peek(1)).count(), 1);
    }

    #[test]
    fn pending_counter_stays_exact_across_mixed_traffic() {
        let mut s = Scheduler::new(128);
        for round in 0..10u64 {
            for a in 0..128 {
                if (a + round as usize).is_multiple_of(3) {
                    s.schedule(a, round + (a as u64 % 15));
                    // Duplicate writes must not inflate the counter.
                    s.schedule(a, round + (a as u64 % 15));
                }
            }
            let taken: usize = bitmap_indices(&s.take(round)).count();
            let brute: usize = (0..SCHEDULER_SLOTS as u64)
                .map(|t| bitmap_indices(s.peek(t)).count())
                .sum();
            assert_eq!(s.pending(), brute, "round {round} (took {taken})");
            assert_eq!(s.is_idle(), brute == 0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_axon_panics() {
        let mut s = Scheduler::new(8);
        s.schedule(8, 0);
    }
}
