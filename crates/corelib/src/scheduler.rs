//! The axonal-delay scheduler.

use serde::{Deserialize, Serialize};

/// Depth of the scheduler ring: axon events can be scheduled up to
/// `SCHEDULER_SLOTS − 1` ticks into the future.
pub const SCHEDULER_SLOTS: usize = 16;

/// A 16-deep ring of axon-event bitmaps.
///
/// The silicon holds a 16 × 256-bit SRAM: slot `t mod 16` records which
/// axons have an event due for integration at tick `t`. A spike packet
/// carries a 4-bit delivery slot; writing a slot more than once is idempotent
/// (axon events are binary, not counted).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scheduler {
    axons: usize,
    words: usize,
    /// All `SCHEDULER_SLOTS` bitmaps in one contiguous block — slot `s` is
    /// `slots[s*words..(s+1)*words]`, axons due at ticks ≡ s (mod 16). One
    /// flat allocation keeps the whole ring (two cache lines for a 256-axon
    /// core) hot across the inject-heavy path, where nested per-slot
    /// vectors cost a second dependent pointer chase per event.
    slots: Vec<u64>,
    /// Number of set bits across all slots, maintained incrementally so
    /// [`Scheduler::is_idle`] / [`Scheduler::pending`] are O(1) — the chip's
    /// active-core scheduler polls idleness every tick for every core.
    pending: usize,
}

impl Scheduler {
    /// Creates an empty scheduler for `axons` axons.
    ///
    /// # Panics
    ///
    /// Panics if `axons` is zero.
    pub fn new(axons: usize) -> Scheduler {
        assert!(axons > 0, "scheduler needs at least one axon");
        let words = axons.div_ceil(64);
        Scheduler {
            axons,
            words,
            slots: vec![0; words * SCHEDULER_SLOTS],
            pending: 0,
        }
    }

    /// Number of axons covered.
    #[inline]
    pub fn axons(&self) -> usize {
        self.axons
    }

    /// A freshly allocated copy of the slot ring, for the chip builder's
    /// two-phase hot-state repack (clone every core's hot vectors in
    /// placement order, then install them via
    /// [`Scheduler::install_slots`]).
    pub(crate) fn clone_slots(&self) -> Vec<u64> {
        self.slots.clone()
    }

    /// Installs a slot ring previously obtained from
    /// [`Scheduler::clone_slots`]; the replacement must be bit-identical.
    pub(crate) fn install_slots(&mut self, slots: Vec<u64>) {
        debug_assert_eq!(self.slots, slots, "repack must not alter the ring");
        self.slots = slots;
    }

    /// Records an event for `axon` in the slot for tick `target_tick`.
    ///
    /// The caller is responsible for ensuring `target_tick` is within the
    /// next `SCHEDULER_SLOTS − 1` ticks; the ring cannot distinguish farther
    /// targets (this invariant is enforced where packets are injected).
    ///
    /// # Panics
    ///
    /// Panics if `axon` is out of range.
    #[inline]
    pub fn schedule(&mut self, axon: usize, target_tick: u64) {
        assert!(axon < self.axons, "axon {axon} out of range");
        let slot = (target_tick % SCHEDULER_SLOTS as u64) as usize;
        let word = &mut self.slots[slot * self.words + axon / 64];
        let bit = 1u64 << (axon % 64);
        if *word & bit == 0 {
            self.pending += 1;
        }
        *word |= bit;
    }

    /// Records events for every set bit of `bits` — axons `word*64 + b` —
    /// in the slot for tick `target_tick`: the burst form of
    /// [`Scheduler::schedule`]. One bitmap OR plus a popcount replaces up
    /// to 64 per-axon calls on injection-heavy paths.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range or `bits` has a bit set past the
    /// axon count.
    #[inline]
    pub fn schedule_word(&mut self, word: usize, bits: u64, target_tick: u64) {
        assert!(word < self.words, "word {word} out of range");
        let lanes = (self.axons - word * 64).min(64);
        assert!(
            lanes == 64 || bits >> lanes == 0,
            "bits past the axon count"
        );
        let slot = (target_tick % SCHEDULER_SLOTS as u64) as usize;
        let w = &mut self.slots[slot * self.words + word];
        self.pending += (bits & !*w).count_ones() as usize;
        *w |= bits;
    }

    /// Takes (and clears) the axon bitmap due at `tick`.
    pub fn take(&mut self, tick: u64) -> Vec<u64> {
        let mut out = vec![0; self.words];
        self.take_into(tick, &mut out);
        out
    }

    /// Copies the axon bitmap due at `tick` into `out` and clears the slot.
    ///
    /// The allocation-free form of [`Scheduler::take`] for the per-tick hot
    /// path: the core reuses one scratch buffer across ticks.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the bitmap word count.
    pub fn take_into(&mut self, tick: u64, out: &mut [u64]) {
        let slot = (tick % SCHEDULER_SLOTS as u64) as usize;
        let src = &mut self.slots[slot * self.words..(slot + 1) * self.words];
        out.copy_from_slice(src);
        let mut cleared = 0usize;
        for word in src.iter_mut() {
            cleared += word.count_ones() as usize;
            *word = 0;
        }
        self.pending -= cleared;
    }

    /// Peeks at the axon bitmap due at `tick` without clearing it.
    pub fn peek(&self, tick: u64) -> &[u64] {
        let slot = (tick % SCHEDULER_SLOTS as u64) as usize;
        &self.slots[slot * self.words..(slot + 1) * self.words]
    }

    /// Whether any event is pending in any slot. O(1).
    pub fn is_idle(&self) -> bool {
        self.pending == 0
    }

    /// Total number of pending axon events across all slots. O(1).
    pub fn pending(&self) -> usize {
        self.pending
    }
}

/// Expands a bitmap into sorted axon indices.
pub(crate) fn bitmap_indices(bitmap: &[u64]) -> impl Iterator<Item = usize> + '_ {
    bitmap.iter().enumerate().flat_map(|(wi, &word)| {
        let mut w = word;
        std::iter::from_fn(move || {
            if w == 0 {
                None
            } else {
                let b = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + b)
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_and_take() {
        let mut s = Scheduler::new(256);
        s.schedule(3, 7);
        s.schedule(130, 7);
        s.schedule(3, 8);
        let due7: Vec<usize> = bitmap_indices(&s.take(7)).collect();
        assert_eq!(due7, vec![3, 130]);
        let due7_again: Vec<usize> = bitmap_indices(&s.take(7)).collect();
        assert!(due7_again.is_empty(), "take clears the slot");
        let due8: Vec<usize> = bitmap_indices(&s.take(8)).collect();
        assert_eq!(due8, vec![3]);
    }

    #[test]
    fn duplicate_schedule_is_idempotent() {
        let mut s = Scheduler::new(64);
        s.schedule(5, 2);
        s.schedule(5, 2);
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn ring_wraps_mod_16() {
        let mut s = Scheduler::new(8);
        s.schedule(1, 20); // slot 4
        let due: Vec<usize> = bitmap_indices(&s.take(4)).collect();
        assert_eq!(due, vec![1]);
    }

    #[test]
    fn idle_and_pending_track_events() {
        let mut s = Scheduler::new(8);
        assert!(s.is_idle());
        s.schedule(0, 0);
        s.schedule(7, 15);
        assert!(!s.is_idle());
        assert_eq!(s.pending(), 2);
        s.take(0);
        s.take(15);
        assert!(s.is_idle());
    }

    #[test]
    fn peek_does_not_clear() {
        let mut s = Scheduler::new(8);
        s.schedule(2, 1);
        assert_eq!(bitmap_indices(s.peek(1)).count(), 1);
        assert_eq!(bitmap_indices(s.peek(1)).count(), 1);
    }

    #[test]
    fn pending_counter_stays_exact_across_mixed_traffic() {
        let mut s = Scheduler::new(128);
        for round in 0..10u64 {
            for a in 0..128 {
                if (a + round as usize).is_multiple_of(3) {
                    s.schedule(a, round + (a as u64 % 15));
                    // Duplicate writes must not inflate the counter.
                    s.schedule(a, round + (a as u64 % 15));
                }
            }
            let taken: usize = bitmap_indices(&s.take(round)).count();
            let brute: usize = (0..SCHEDULER_SLOTS as u64)
                .map(|t| bitmap_indices(s.peek(t)).count())
                .sum();
            assert_eq!(s.pending(), brute, "round {round} (took {taken})");
            assert_eq!(s.is_idle(), brute == 0);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_axon_panics() {
        let mut s = Scheduler::new(8);
        s.schedule(8, 0);
    }

    #[test]
    fn schedule_word_matches_per_axon_schedule() {
        let mut per_axon = Scheduler::new(100);
        let mut burst = Scheduler::new(100);
        // Word 1 covers axons 64..100: a ragged 36-lane tail.
        let bits = 0b1011_0000_0000_0101u64;
        for b in 0..64 {
            if bits & (1 << b) != 0 {
                per_axon.schedule(64 + b, 9);
            }
        }
        burst.schedule_word(1, bits, 9);
        assert_eq!(per_axon, burst);
        assert_eq!(burst.pending(), bits.count_ones() as usize);
        // Overlapping burst: pending must count only the new bits.
        burst.schedule_word(1, bits | 0b10, 9);
        assert_eq!(burst.pending(), bits.count_ones() as usize + 1);
    }

    #[test]
    #[should_panic(expected = "past the axon count")]
    fn schedule_word_rejects_tail_bits() {
        let mut s = Scheduler::new(70); // word 1 has 6 valid lanes
        s.schedule_word(1, 1 << 6, 0);
    }
}
