//! The binary synaptic crossbar.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// Longest all-zero row servable without backing storage: 64 words cover
/// 4096 neuron columns, far past the 256 the architecture specifies.
/// Crossbars wider than this (test-only shapes, if any) fall back to eager
/// dense allocation in [`Crossbar::new`].
static ZERO_ROW: [u64; 64] = [0; 64];

/// Where a crossbar's packed words live.
///
/// A full-silicon chip holds 4096 crossbars of 8 KiB each (~268M potential
/// synapses), but a sparse workload programs a few percent of them. Storage
/// starts [`Storage::Empty`] (every row reads as zeros from a static slice),
/// becomes [`Storage::Owned`] on the first programmed synapse, and the chip
/// builder re-homes built cores into one contiguous [`Storage::Shared`]
/// arena so the tick path walks packed words in placement order instead of
/// chasing thousands of scattered `Vec` allocations. Shared storage is
/// copy-on-write: a post-build mutation (fault burn-in, checkpoint restore)
/// detaches the core back to an owned copy.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Storage {
    /// No backing words; all rows read as zeros.
    Empty,
    /// A privately owned dense matrix.
    Owned(Vec<u64>),
    /// A `words`-long window at `offset` into a chip-level arena.
    Shared { arena: Arc<[u64]>, offset: usize },
}

/// A binary axon × neuron connectivity matrix, stored row-major as packed
/// 64-bit words (one row per axon).
///
/// The crossbar answers two questions fast:
///
/// * dense path: "which axons drive neuron `i`?" — a column scan, and
/// * sparse path: "which neurons does axon `j` drive?" — a row scan over
///   set bits.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Crossbar {
    axons: usize,
    neurons: usize,
    words_per_row: usize,
    bits: Storage,
    /// Per-row set-bit counts, maintained incrementally by
    /// [`Crossbar::set`]. The SWAR kernel charges `synaptic_events` per
    /// active axon from these instead of re-popcounting the row, and
    /// [`Crossbar::synapse_count`] / [`Crossbar::density`] become O(1).
    /// Left unallocated (empty vec ≡ all zeros) until the first synapse.
    row_counts: Vec<u32>,
    /// Total set bits (the sum of `row_counts`).
    total: u64,
}

/// Equality is logical, not representational: an empty (zero-page)
/// crossbar equals a dense all-zero one, and arena-shared storage equals an
/// owned copy of the same bits. Checkpoint round-trips and `ChipBatch` lane
/// comparisons rely on this.
impl PartialEq for Crossbar {
    fn eq(&self, other: &Crossbar) -> bool {
        if self.axons != other.axons || self.neurons != other.neurons || self.total != other.total {
            return false;
        }
        if self.total == 0 {
            return true; // both all-zero, whatever the storage
        }
        (0..self.axons).all(|axon| self.row_words(axon) == other.row_words(axon))
    }
}

impl Eq for Crossbar {}

impl Crossbar {
    /// Creates an empty (all-zero) crossbar.
    ///
    /// No synapse words are allocated until the first [`Crossbar::set`] /
    /// [`Crossbar::set_row_word`] call: a never-programmed core costs two
    /// empty vecs, not `axons * words_per_row` words of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(axons: usize, neurons: usize) -> Crossbar {
        assert!(
            axons > 0 && neurons > 0,
            "crossbar dimensions must be non-zero"
        );
        let words_per_row = neurons.div_ceil(64);
        // Rows wider than the static zero slice can't be served storage-free.
        let bits = if words_per_row <= ZERO_ROW.len() {
            Storage::Empty
        } else {
            Storage::Owned(vec![0; axons * words_per_row])
        };
        Crossbar {
            axons,
            neurons,
            words_per_row,
            bits,
            row_counts: Vec::new(),
            total: 0,
        }
    }

    /// Dense backing words, materialising and/or detaching from shared
    /// storage first — the write half of copy-on-write.
    fn bits_mut(&mut self) -> &mut Vec<u64> {
        if let Storage::Owned(ref mut words) = self.bits {
            return words;
        }
        let dense = match &self.bits {
            Storage::Empty => vec![0; self.axons * self.words_per_row],
            Storage::Shared { arena, offset } => {
                arena[*offset..*offset + self.axons * self.words_per_row].to_vec()
            }
            Storage::Owned(_) => unreachable!(),
        };
        self.bits = Storage::Owned(dense);
        match self.bits {
            Storage::Owned(ref mut words) => words,
            _ => unreachable!(),
        }
    }

    /// Per-row popcount cache, allocated on first mutation.
    fn row_counts_mut(&mut self) -> &mut Vec<u32> {
        if self.row_counts.is_empty() {
            self.row_counts = vec![0; self.axons];
        }
        &mut self.row_counts
    }

    /// Re-homes the packed words into a shared arena window.
    ///
    /// The caller (the chip builder) must have copied this crossbar's words
    /// to `arena[offset..offset + axons * words_per_row]` verbatim; the
    /// crossbar then drops its private allocation and reads from the arena
    /// until the next mutation detaches it again.
    pub fn adopt_arena(&mut self, arena: Arc<[u64]>, offset: usize) {
        debug_assert!(offset + self.axons * self.words_per_row <= arena.len());
        debug_assert!(
            (0..self.axons).all(|a| *self.row_words(a)
                == arena[offset + a * self.words_per_row..offset + (a + 1) * self.words_per_row]),
            "arena window must hold this crossbar's exact bits"
        );
        self.bits = Storage::Shared { arena, offset };
    }

    /// Number of backing words this crossbar privately owns (0 when empty
    /// or arena-shared). The builder uses this to size the arena.
    pub fn owned_words(&self) -> usize {
        match &self.bits {
            Storage::Owned(words) => words.len(),
            _ => 0,
        }
    }

    /// Number of axon rows.
    #[inline]
    pub fn axons(&self) -> usize {
        self.axons
    }

    /// Number of neuron columns.
    #[inline]
    pub fn neurons(&self) -> usize {
        self.neurons
    }

    /// Sets or clears the synapse `axon → neuron`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set(&mut self, axon: usize, neuron: usize, connected: bool) {
        assert!(axon < self.axons, "axon {axon} out of range");
        assert!(neuron < self.neurons, "neuron {neuron} out of range");
        let word = axon * self.words_per_row + neuron / 64;
        let mask = 1u64 << (neuron % 64);
        // Clearing an already-clear bit must not materialise storage: a
        // fault plan burning stuck-at-zero cells across a quiescent chip
        // would otherwise densify every untouched core.
        let current = self.word(word);
        // The popcount caches adjust only on an actual flip, so redundant
        // sets of an already-programmed cell stay idempotent.
        if connected && current & mask == 0 {
            self.bits_mut()[word] |= mask;
            self.row_counts_mut()[axon] += 1;
            self.total += 1;
        } else if !connected && current & mask != 0 {
            self.bits_mut()[word] &= !mask;
            self.row_counts_mut()[axon] -= 1;
            self.total -= 1;
        }
    }

    /// One packed word by flat index, storage-agnostic.
    #[inline]
    fn word(&self, index: usize) -> u64 {
        match &self.bits {
            Storage::Empty => 0,
            Storage::Owned(words) => words[index],
            Storage::Shared { arena, offset } => arena[offset + index],
        }
    }

    /// Replaces one packed 64-column word of an axon row in a single store,
    /// keeping the popcount caches exact. Bit `b` of `bits` programs the
    /// synapse `axon → word * 64 + b`. The bulk-construction primitive the
    /// benchmark corpus generator uses: programming a full 256×256 crossbar
    /// costs 1024 word stores instead of 65 536 [`Crossbar::set`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `axon` or `word` is out of range, or if `bits` has a bit
    /// set beyond the last neuron column (a ragged tail word).
    pub fn set_row_word(&mut self, axon: usize, word: usize, bits: u64) {
        assert!(axon < self.axons, "axon {axon} out of range");
        assert!(word < self.words_per_row, "word {word} out of range");
        let lanes = (self.neurons - word * 64).min(64);
        assert!(
            lanes == 64 || bits >> lanes == 0,
            "bits set beyond the last neuron column"
        );
        let slot = axon * self.words_per_row + word;
        let old = self.word(slot);
        if old == bits {
            return; // idempotent; in particular, zero words stay storage-free
        }
        self.bits_mut()[slot] = bits;
        let counts = self.row_counts_mut();
        counts[axon] -= old.count_ones();
        counts[axon] += bits.count_ones();
        self.total -= u64::from(old.count_ones());
        self.total += u64::from(bits.count_ones());
    }

    /// Whether the synapse `axon → neuron` is present.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn get(&self, axon: usize, neuron: usize) -> bool {
        assert!(axon < self.axons, "axon {axon} out of range");
        assert!(neuron < self.neurons, "neuron {neuron} out of range");
        let word = axon * self.words_per_row + neuron / 64;
        (self.word(word) >> (neuron % 64)) & 1 != 0
    }

    /// The packed words of one axon row.
    ///
    /// A never-programmed crossbar serves every row from one static zero
    /// slice — reading sparse silicon touches no heap pages at all.
    #[inline]
    pub fn row_words(&self, axon: usize) -> &[u64] {
        let start = axon * self.words_per_row;
        match &self.bits {
            Storage::Empty => &ZERO_ROW[..self.words_per_row],
            Storage::Owned(words) => &words[start..start + self.words_per_row],
            Storage::Shared { arena, offset } => {
                &arena[offset + start..offset + start + self.words_per_row]
            }
        }
    }

    /// Iterates over the neurons driven by `axon`.
    pub fn row_neurons(&self, axon: usize) -> impl Iterator<Item = usize> + '_ {
        self.row_words(axon)
            .iter()
            .enumerate()
            .flat_map(|(wi, &word)| BitIter::new(word).map(move |b| wi * 64 + b))
    }

    /// Number of synapses on one axon row. O(1) — served from the
    /// incrementally maintained per-row popcount cache.
    #[inline]
    pub fn row_popcount(&self, axon: usize) -> u32 {
        assert!(axon < self.axons, "axon {axon} out of range");
        self.row_counts.get(axon).copied().unwrap_or(0)
    }

    /// Number of synapses present. O(1).
    pub fn synapse_count(&self) -> usize {
        self.total as usize
    }

    /// Fraction of possible synapses present.
    pub fn density(&self) -> f64 {
        self.synapse_count() as f64 / (self.axons * self.neurons) as f64
    }
}

/// Iterator over set-bit positions of a word.
struct BitIter {
    word: u64,
}

impl BitIter {
    fn new(word: u64) -> BitIter {
        BitIter { word }
    }
}

impl Iterator for BitIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            None
        } else {
            let bit = self.word.trailing_zeros() as usize;
            self.word &= self.word - 1;
            Some(bit)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let xb = Crossbar::new(256, 256);
        assert_eq!(xb.synapse_count(), 0);
        assert_eq!(xb.density(), 0.0);
        assert!(!xb.get(0, 0));
    }

    #[test]
    fn set_get_round_trip() {
        let mut xb = Crossbar::new(256, 256);
        xb.set(3, 200, true);
        xb.set(255, 0, true);
        assert!(xb.get(3, 200));
        assert!(xb.get(255, 0));
        assert!(!xb.get(3, 201));
        xb.set(3, 200, false);
        assert!(!xb.get(3, 200));
        assert_eq!(xb.synapse_count(), 1);
    }

    #[test]
    fn row_neurons_yields_sorted_set_bits() {
        let mut xb = Crossbar::new(4, 200);
        for n in [0, 63, 64, 127, 128, 199] {
            xb.set(2, n, true);
        }
        let row: Vec<usize> = xb.row_neurons(2).collect();
        assert_eq!(row, vec![0, 63, 64, 127, 128, 199]);
        assert_eq!(xb.row_neurons(0).count(), 0);
    }

    #[test]
    fn non_multiple_of_64_dimensions() {
        let mut xb = Crossbar::new(10, 70);
        xb.set(9, 69, true);
        assert!(xb.get(9, 69));
        assert_eq!(xb.row_neurons(9).collect::<Vec<_>>(), vec![69]);
    }

    #[test]
    fn popcount_caches_track_sets_and_clears() {
        let mut xb = Crossbar::new(4, 100);
        xb.set(1, 5, true);
        xb.set(1, 5, true); // redundant set must not double-count
        xb.set(1, 70, true);
        xb.set(2, 0, true);
        assert_eq!(xb.row_popcount(1), 2);
        assert_eq!(xb.row_popcount(2), 1);
        assert_eq!(xb.row_popcount(0), 0);
        assert_eq!(xb.synapse_count(), 3);
        xb.set(1, 5, false);
        xb.set(1, 5, false); // redundant clear likewise
        assert_eq!(xb.row_popcount(1), 1);
        assert_eq!(xb.synapse_count(), 2);
        // The cache must always equal a fresh scan of the packed words.
        let scan: u32 = xb.row_words(1).iter().map(|w| w.count_ones()).sum();
        assert_eq!(xb.row_popcount(1), scan);
    }

    #[test]
    fn set_row_word_replaces_and_tracks_counts() {
        let mut xb = Crossbar::new(4, 130);
        xb.set(1, 3, true);
        xb.set(1, 64, true);
        // Replace word 0 wholesale: the old bit 3 is dropped, bits 0/5 land.
        xb.set_row_word(1, 0, 0b10_0001);
        assert!(xb.get(1, 0));
        assert!(xb.get(1, 5));
        assert!(!xb.get(1, 3));
        assert!(xb.get(1, 64));
        assert_eq!(xb.row_popcount(1), 3);
        assert_eq!(xb.synapse_count(), 3);
        // Ragged tail word: columns 128..130 occupy 2 lanes.
        xb.set_row_word(2, 2, 0b11);
        assert!(xb.get(2, 128) && xb.get(2, 129));
        // The cache must equal a fresh scan of the packed words.
        let scan: u32 = xb.row_words(1).iter().map(|w| w.count_ones()).sum();
        assert_eq!(xb.row_popcount(1), scan);
    }

    #[test]
    #[should_panic(expected = "beyond the last neuron column")]
    fn set_row_word_rejects_tail_bits() {
        let mut xb = Crossbar::new(4, 130);
        xb.set_row_word(0, 2, 0b100); // column 130 does not exist
    }

    #[test]
    fn empty_crossbar_allocates_no_words() {
        let xb = Crossbar::new(256, 256);
        assert_eq!(xb.owned_words(), 0);
        // Reads, redundant clears, and zero-word stores must all stay
        // storage-free.
        assert!(!xb.get(255, 255));
        assert_eq!(xb.row_words(128), &[0u64; 4]);
        assert_eq!(xb.row_popcount(7), 0);
        let mut xb = xb;
        xb.set(3, 3, false);
        xb.set_row_word(2, 1, 0);
        assert_eq!(xb.owned_words(), 0);
        // The first real synapse materialises the dense matrix.
        xb.set(3, 3, true);
        assert_eq!(xb.owned_words(), 256 * 4);
        assert!(xb.get(3, 3));
    }

    #[test]
    fn empty_equals_dense_zero_and_arena_equals_owned() {
        let empty = Crossbar::new(8, 100);
        let mut dense = Crossbar::new(8, 100);
        dense.set(0, 0, true);
        dense.set(0, 0, false); // owned storage, all-zero bits
        assert_eq!(empty, dense);

        let mut owned = Crossbar::new(4, 70);
        owned.set(1, 5, true);
        owned.set(3, 69, true);
        let mut shared = owned.clone();
        let words: Arc<[u64]> = (0..4)
            .flat_map(|a| owned.row_words(a).to_vec())
            .collect::<Vec<_>>()
            .into();
        shared.adopt_arena(words, 0);
        assert_eq!(shared.owned_words(), 0);
        assert_eq!(owned, shared);
        assert!(shared.get(1, 5) && shared.get(3, 69));
        // Writing through shared storage detaches (copy-on-write) without
        // disturbing the original.
        let mut detached = shared.clone();
        detached.set(0, 0, true);
        assert!(detached.owned_words() > 0);
        assert!(detached.get(1, 5));
        assert_ne!(detached, owned);
        assert_eq!(shared, owned);
    }

    #[test]
    fn oversized_rows_fall_back_to_dense() {
        // 65 words per row exceeds the static zero slice.
        let xb = Crossbar::new(2, 64 * 64 + 8);
        assert!(xb.owned_words() > 0);
        assert!(!xb.get(1, 64 * 64 + 7));
        assert_eq!(xb.row_words(1).len(), 65);
    }

    #[test]
    fn density_counts_fraction() {
        let mut xb = Crossbar::new(10, 10);
        for i in 0..10 {
            xb.set(i, i, true);
        }
        assert!((xb.density() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut xb = Crossbar::new(4, 4);
        xb.set(4, 0, true);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = Crossbar::new(0, 4);
    }
}
