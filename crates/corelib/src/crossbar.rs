//! The binary synaptic crossbar.

use serde::{Deserialize, Serialize};

/// A binary axon × neuron connectivity matrix, stored row-major as packed
/// 64-bit words (one row per axon).
///
/// The crossbar answers two questions fast:
///
/// * dense path: "which axons drive neuron `i`?" — a column scan, and
/// * sparse path: "which neurons does axon `j` drive?" — a row scan over
///   set bits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Crossbar {
    axons: usize,
    neurons: usize,
    words_per_row: usize,
    bits: Vec<u64>,
    /// Per-row set-bit counts, maintained incrementally by
    /// [`Crossbar::set`]. The SWAR kernel charges `synaptic_events` per
    /// active axon from these instead of re-popcounting the row, and
    /// [`Crossbar::synapse_count`] / [`Crossbar::density`] become O(1).
    row_counts: Vec<u32>,
    /// Total set bits (the sum of `row_counts`).
    total: u64,
}

impl Crossbar {
    /// Creates an empty (all-zero) crossbar.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(axons: usize, neurons: usize) -> Crossbar {
        assert!(
            axons > 0 && neurons > 0,
            "crossbar dimensions must be non-zero"
        );
        let words_per_row = neurons.div_ceil(64);
        Crossbar {
            axons,
            neurons,
            words_per_row,
            bits: vec![0; axons * words_per_row],
            row_counts: vec![0; axons],
            total: 0,
        }
    }

    /// Number of axon rows.
    #[inline]
    pub fn axons(&self) -> usize {
        self.axons
    }

    /// Number of neuron columns.
    #[inline]
    pub fn neurons(&self) -> usize {
        self.neurons
    }

    /// Sets or clears the synapse `axon → neuron`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn set(&mut self, axon: usize, neuron: usize, connected: bool) {
        assert!(axon < self.axons, "axon {axon} out of range");
        assert!(neuron < self.neurons, "neuron {neuron} out of range");
        let word = axon * self.words_per_row + neuron / 64;
        let mask = 1u64 << (neuron % 64);
        // The popcount caches adjust only on an actual flip, so redundant
        // sets of an already-programmed cell stay idempotent.
        if connected && self.bits[word] & mask == 0 {
            self.bits[word] |= mask;
            self.row_counts[axon] += 1;
            self.total += 1;
        } else if !connected && self.bits[word] & mask != 0 {
            self.bits[word] &= !mask;
            self.row_counts[axon] -= 1;
            self.total -= 1;
        }
    }

    /// Replaces one packed 64-column word of an axon row in a single store,
    /// keeping the popcount caches exact. Bit `b` of `bits` programs the
    /// synapse `axon → word * 64 + b`. The bulk-construction primitive the
    /// benchmark corpus generator uses: programming a full 256×256 crossbar
    /// costs 1024 word stores instead of 65 536 [`Crossbar::set`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `axon` or `word` is out of range, or if `bits` has a bit
    /// set beyond the last neuron column (a ragged tail word).
    pub fn set_row_word(&mut self, axon: usize, word: usize, bits: u64) {
        assert!(axon < self.axons, "axon {axon} out of range");
        assert!(word < self.words_per_row, "word {word} out of range");
        let lanes = (self.neurons - word * 64).min(64);
        assert!(
            lanes == 64 || bits >> lanes == 0,
            "bits set beyond the last neuron column"
        );
        let slot = axon * self.words_per_row + word;
        let old = self.bits[slot];
        self.bits[slot] = bits;
        self.row_counts[axon] -= old.count_ones();
        self.row_counts[axon] += bits.count_ones();
        self.total -= u64::from(old.count_ones());
        self.total += u64::from(bits.count_ones());
    }

    /// Whether the synapse `axon → neuron` is present.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn get(&self, axon: usize, neuron: usize) -> bool {
        assert!(axon < self.axons, "axon {axon} out of range");
        assert!(neuron < self.neurons, "neuron {neuron} out of range");
        let word = axon * self.words_per_row + neuron / 64;
        (self.bits[word] >> (neuron % 64)) & 1 != 0
    }

    /// The packed words of one axon row.
    #[inline]
    pub fn row_words(&self, axon: usize) -> &[u64] {
        let start = axon * self.words_per_row;
        &self.bits[start..start + self.words_per_row]
    }

    /// Iterates over the neurons driven by `axon`.
    pub fn row_neurons(&self, axon: usize) -> impl Iterator<Item = usize> + '_ {
        self.row_words(axon)
            .iter()
            .enumerate()
            .flat_map(|(wi, &word)| BitIter::new(word).map(move |b| wi * 64 + b))
    }

    /// Number of synapses on one axon row. O(1) — served from the
    /// incrementally maintained per-row popcount cache.
    #[inline]
    pub fn row_popcount(&self, axon: usize) -> u32 {
        self.row_counts[axon]
    }

    /// Number of synapses present. O(1).
    pub fn synapse_count(&self) -> usize {
        self.total as usize
    }

    /// Fraction of possible synapses present.
    pub fn density(&self) -> f64 {
        self.synapse_count() as f64 / (self.axons * self.neurons) as f64
    }
}

/// Iterator over set-bit positions of a word.
struct BitIter {
    word: u64,
}

impl BitIter {
    fn new(word: u64) -> BitIter {
        BitIter { word }
    }
}

impl Iterator for BitIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            None
        } else {
            let bit = self.word.trailing_zeros() as usize;
            self.word &= self.word - 1;
            Some(bit)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let xb = Crossbar::new(256, 256);
        assert_eq!(xb.synapse_count(), 0);
        assert_eq!(xb.density(), 0.0);
        assert!(!xb.get(0, 0));
    }

    #[test]
    fn set_get_round_trip() {
        let mut xb = Crossbar::new(256, 256);
        xb.set(3, 200, true);
        xb.set(255, 0, true);
        assert!(xb.get(3, 200));
        assert!(xb.get(255, 0));
        assert!(!xb.get(3, 201));
        xb.set(3, 200, false);
        assert!(!xb.get(3, 200));
        assert_eq!(xb.synapse_count(), 1);
    }

    #[test]
    fn row_neurons_yields_sorted_set_bits() {
        let mut xb = Crossbar::new(4, 200);
        for n in [0, 63, 64, 127, 128, 199] {
            xb.set(2, n, true);
        }
        let row: Vec<usize> = xb.row_neurons(2).collect();
        assert_eq!(row, vec![0, 63, 64, 127, 128, 199]);
        assert_eq!(xb.row_neurons(0).count(), 0);
    }

    #[test]
    fn non_multiple_of_64_dimensions() {
        let mut xb = Crossbar::new(10, 70);
        xb.set(9, 69, true);
        assert!(xb.get(9, 69));
        assert_eq!(xb.row_neurons(9).collect::<Vec<_>>(), vec![69]);
    }

    #[test]
    fn popcount_caches_track_sets_and_clears() {
        let mut xb = Crossbar::new(4, 100);
        xb.set(1, 5, true);
        xb.set(1, 5, true); // redundant set must not double-count
        xb.set(1, 70, true);
        xb.set(2, 0, true);
        assert_eq!(xb.row_popcount(1), 2);
        assert_eq!(xb.row_popcount(2), 1);
        assert_eq!(xb.row_popcount(0), 0);
        assert_eq!(xb.synapse_count(), 3);
        xb.set(1, 5, false);
        xb.set(1, 5, false); // redundant clear likewise
        assert_eq!(xb.row_popcount(1), 1);
        assert_eq!(xb.synapse_count(), 2);
        // The cache must always equal a fresh scan of the packed words.
        let scan: u32 = xb.row_words(1).iter().map(|w| w.count_ones()).sum();
        assert_eq!(xb.row_popcount(1), scan);
    }

    #[test]
    fn set_row_word_replaces_and_tracks_counts() {
        let mut xb = Crossbar::new(4, 130);
        xb.set(1, 3, true);
        xb.set(1, 64, true);
        // Replace word 0 wholesale: the old bit 3 is dropped, bits 0/5 land.
        xb.set_row_word(1, 0, 0b10_0001);
        assert!(xb.get(1, 0));
        assert!(xb.get(1, 5));
        assert!(!xb.get(1, 3));
        assert!(xb.get(1, 64));
        assert_eq!(xb.row_popcount(1), 3);
        assert_eq!(xb.synapse_count(), 3);
        // Ragged tail word: columns 128..130 occupy 2 lanes.
        xb.set_row_word(2, 2, 0b11);
        assert!(xb.get(2, 128) && xb.get(2, 129));
        // The cache must equal a fresh scan of the packed words.
        let scan: u32 = xb.row_words(1).iter().map(|w| w.count_ones()).sum();
        assert_eq!(xb.row_popcount(1), scan);
    }

    #[test]
    #[should_panic(expected = "beyond the last neuron column")]
    fn set_row_word_rejects_tail_bits() {
        let mut xb = Crossbar::new(4, 130);
        xb.set_row_word(0, 2, 0b100); // column 130 does not exist
    }

    #[test]
    fn density_counts_fraction() {
        let mut xb = Crossbar::new(10, 10);
        for i in 0..10 {
            xb.set(i, i, true);
        }
        assert!((xb.density() - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut xb = Crossbar::new(4, 4);
        xb.set(4, 0, true);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = Crossbar::new(0, 4);
    }
}
