//! Word-parallel (bit-sliced SWAR) synaptic integration.
//!
//! The crossbar already stores each axon row as packed `u64` words, so
//! counting, per neuron, how many active axons of each type drive it is a
//! bit-matrix column-count problem. This kernel solves it with bit-sliced
//! binary counters: per axon type it keeps a stack of *bit planes*, where
//! plane `k` holds bit `k` of every neuron's running count (64 neurons per
//! word). Adding an active row is a carry-save ripple insertion —
//!
//! ```text
//! sum   = plane[k] ^ carry
//! carry = plane[k] & carry
//! ```
//!
//! — which terminates as soon as the carry word empties, so inserting one
//! row costs `O(words_per_row)` word operations amortised (the carry chain
//! beyond plane 0 is geometrically rare), against the
//! `O(set bits in the row)` per-bit cost of the scalar event-driven loop.
//! Extraction scatters each plane's set bits back into the per-neuron
//! counters with weight `2^k`, touching only planes that were actually
//! reached.
//!
//! The kernel computes *exact* counts, so it composes with every neuron
//! mode: stochastic cores still consume the canonical per-event LFSR draws
//! from the counts, and the census charges `synaptic_events` from the
//! crossbar's cached row popcounts — bit-identical to per-event counting.

/// Number of axon types (the plane stacks are per-type).
const TYPES: usize = 4;

/// Reusable bit-sliced counter scratch for one core's synaptic
/// integration. One kernel instance belongs to one core and is reused
/// every tick; planes grow to the high-water depth once and are cleared
/// (not freed) by [`SwarKernel::flush_into`].
#[derive(Debug, Clone)]
pub struct SwarKernel {
    /// Words per crossbar row (`neurons.div_ceil(64)`).
    words: usize,
    /// Per-type bit-plane stacks, each a plane-major `[depth × words]`
    /// array: plane `k` of type `t` is `planes[t][k*words..(k+1)*words]`.
    planes: [Vec<u64>; TYPES],
}

impl SwarKernel {
    /// A kernel for rows of `neurons` columns.
    pub fn new(neurons: usize) -> SwarKernel {
        SwarKernel {
            words: neurons.div_ceil(64),
            planes: Default::default(),
        }
    }

    /// Adds one active axon row (its packed crossbar words) to the counter
    /// stack of axon type `ty`.
    ///
    /// Bits beyond the neuron count must be zero — the crossbar's packing
    /// guarantees this for its rows.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not exactly `words_per_row` long or `ty` is not
    /// a valid axon-type index.
    #[inline]
    pub fn accumulate_row(&mut self, ty: usize, row: &[u64]) {
        assert_eq!(row.len(), self.words, "row width mismatch");
        let planes = &mut self.planes[ty];
        for (w, &bits) in row.iter().enumerate() {
            let mut carry = bits;
            let mut k = 0;
            while carry != 0 {
                let idx = k * self.words + w;
                if idx >= planes.len() {
                    // First time any counter reaches 2^k: open plane k.
                    planes.resize((k + 1) * self.words, 0);
                }
                let sum = planes[idx] ^ carry;
                carry &= planes[idx];
                planes[idx] = sum;
                k += 1;
            }
        }
    }

    /// Scatters the accumulated per-neuron counts into `counts` (layout
    /// `counts[neuron * 4 + ty]`, the core's phase-2 counter block) and
    /// clears the planes for the next tick.
    ///
    /// # Panics
    ///
    /// Panics if a set plane bit addresses a neuron outside `counts` (only
    /// possible when a row violated the zero-tail-bits contract).
    pub fn flush_into(&mut self, counts: &mut [u32]) {
        for (ty, planes) in self.planes.iter_mut().enumerate() {
            for (k, plane) in planes.chunks_exact_mut(self.words).enumerate() {
                let weight = 1u32 << k;
                for (w, word) in plane.iter_mut().enumerate() {
                    let mut bits = std::mem::take(word);
                    while bits != 0 {
                        let neuron = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        counts[neuron * TYPES + ty] += weight;
                    }
                }
            }
        }
    }

    /// Like [`SwarKernel::flush_into`], but scattering into a *type-major
    /// planar* counter block: plane `ty` is `counts[ty*n..(ty+1)*n]` with
    /// `n = counts.len() / 4` neurons — the layout the uniform-core
    /// vectorised scan consumes with unit stride. The `u16` lanes are
    /// exact: a per-type count is bounded by the core's axon count (≤ 256).
    ///
    /// # Panics
    ///
    /// Panics if `counts.len()` is not a multiple of 4, or if a set plane
    /// bit addresses a neuron outside a plane (only possible when a row
    /// violated the zero-tail-bits contract).
    pub fn flush_planar(&mut self, counts: &mut [u16]) {
        assert!(
            counts.len().is_multiple_of(TYPES),
            "planar counts must hold 4 planes"
        );
        let neurons = counts.len() / TYPES;
        for (ty, planes) in self.planes.iter_mut().enumerate() {
            let base = ty * neurons;
            for (k, plane) in planes.chunks_exact_mut(self.words).enumerate() {
                let weight = 1u16 << k;
                for (w, word) in plane.iter_mut().enumerate() {
                    let mut bits = std::mem::take(word);
                    while bits != 0 {
                        let neuron = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        counts[base + neuron] += weight;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossbar::Crossbar;

    /// Scalar reference: per-bit row walk, identical to the sparse path.
    fn scalar_counts(xb: &Crossbar, types: &[usize], active: &[usize]) -> Vec<u32> {
        let mut counts = vec![0u32; xb.neurons() * TYPES];
        for &axon in active {
            for neuron in xb.row_neurons(axon) {
                counts[neuron * TYPES + types[axon]] += 1;
            }
        }
        counts
    }

    fn swar_counts(xb: &Crossbar, types: &[usize], active: &[usize]) -> Vec<u32> {
        let mut kernel = SwarKernel::new(xb.neurons());
        let mut counts = vec![0u32; xb.neurons() * TYPES];
        for &axon in active {
            kernel.accumulate_row(types[axon], xb.row_words(axon));
        }
        kernel.flush_into(&mut counts);
        counts
    }

    #[test]
    fn matches_scalar_on_dense_full_core() {
        let mut xb = Crossbar::new(256, 256);
        let mut state = 0x1234_5678u32;
        let types: Vec<usize> = (0..256).map(|a| a % TYPES).collect();
        for a in 0..256 {
            for n in 0..256 {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                if state & 3 == 0 {
                    xb.set(a, n, true);
                }
            }
        }
        let all: Vec<usize> = (0..256).collect();
        assert_eq!(
            swar_counts(&xb, &types, &all),
            scalar_counts(&xb, &types, &all)
        );
    }

    #[test]
    fn matches_scalar_on_ragged_width() {
        // 70 neurons: a full word plus a 6-bit tail.
        let mut xb = Crossbar::new(10, 70);
        let types: Vec<usize> = (0..10).map(|a| (a * 3) % TYPES).collect();
        for a in 0..10 {
            for n in 0..70 {
                if (a + n) % 3 == 0 {
                    xb.set(a, n, true);
                }
            }
        }
        let active = [0, 3, 4, 7, 9];
        assert_eq!(
            swar_counts(&xb, &types, &active),
            scalar_counts(&xb, &types, &active)
        );
    }

    #[test]
    fn carry_chain_counts_past_plane_boundaries() {
        // 64 identical rows driving one neuron of one type: the counter
        // must ripple through planes 0..=5 and read back exactly 64.
        let mut xb = Crossbar::new(64, 8);
        for a in 0..64 {
            xb.set(a, 5, true);
        }
        let types = vec![2usize; 64];
        let all: Vec<usize> = (0..64).collect();
        let counts = swar_counts(&xb, &types, &all);
        assert_eq!(counts[5 * TYPES + 2], 64);
        assert_eq!(counts.iter().map(|&c| c as u64).sum::<u64>(), 64);
    }

    #[test]
    fn kernel_state_clears_between_ticks() {
        let mut xb = Crossbar::new(4, 100);
        xb.set(0, 99, true);
        xb.set(1, 0, true);
        let mut kernel = SwarKernel::new(100);
        let mut counts = vec![0u32; 100 * TYPES];
        kernel.accumulate_row(0, xb.row_words(0));
        kernel.accumulate_row(0, xb.row_words(1));
        kernel.flush_into(&mut counts);
        assert_eq!(counts[99 * TYPES], 1);
        assert_eq!(counts[0], 1);
        // Second tick on fresh counters: no residue from the first.
        counts.fill(0);
        kernel.accumulate_row(1, xb.row_words(1));
        kernel.flush_into(&mut counts);
        assert_eq!(counts[1], 1);
        assert_eq!(counts.iter().map(|&c| c as u64).sum::<u64>(), 1);
    }

    #[test]
    fn planar_flush_matches_interleaved_flush() {
        // Same accumulation, both extraction layouts: interleaved
        // `[n*4 + ty]` and type-major planar `[ty*n + n]` must agree
        // entry for entry, and both must leave the kernel cleared.
        let mut rng = 0x1234_5678_u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let neurons = 150;
        let axons = 40;
        let mut xb = Crossbar::new(axons, neurons);
        for a in 0..axons {
            for n in 0..neurons {
                if next() % 3 == 0 {
                    xb.set(a, n, true);
                }
            }
        }
        let mut a = SwarKernel::new(neurons);
        let mut b = SwarKernel::new(neurons);
        for axon in 0..axons {
            a.accumulate_row(axon % 4, xb.row_words(axon));
            b.accumulate_row(axon % 4, xb.row_words(axon));
        }
        let mut interleaved = vec![0u32; neurons * TYPES];
        let mut planar = vec![0u16; neurons * TYPES];
        a.flush_into(&mut interleaved);
        b.flush_planar(&mut planar);
        for n in 0..neurons {
            for ty in 0..TYPES {
                assert_eq!(
                    interleaved[n * TYPES + ty],
                    u32::from(planar[ty * neurons + n]),
                    "neuron {n} type {ty}"
                );
            }
        }
        // Both kernels are clear: a second flush yields all zeros.
        let mut residue = vec![0u16; neurons * TYPES];
        b.flush_planar(&mut residue);
        assert!(residue.iter().all(|&c| c == 0));
    }
}
