//! Word-parallel (bit-sliced SWAR) synaptic integration.
//!
//! The crossbar already stores each axon row as packed `u64` words, so
//! counting, per neuron, how many active axons of each type drive it is a
//! bit-matrix column-count problem. This kernel solves it with bit-sliced
//! binary counters: per axon type it keeps a stack of *bit planes*, where
//! plane `k` holds bit `k` of every neuron's running count (64 neurons per
//! word). Adding an active row is a carry-save ripple insertion —
//!
//! ```text
//! sum   = plane[k] ^ carry
//! carry = plane[k] & carry
//! ```
//!
//! — which terminates as soon as the carry word empties, so inserting one
//! row costs `O(words_per_row)` word operations amortised (the carry chain
//! beyond plane 0 is geometrically rare), against the
//! `O(set bits in the row)` per-bit cost of the scalar event-driven loop.
//! Extraction scatters each plane's set bits back into the per-neuron
//! counters with weight `2^k`, touching only planes that were actually
//! reached.
//!
//! The kernel computes *exact* counts, so it composes with every neuron
//! mode: stochastic cores still consume the canonical per-event LFSR draws
//! from the counts, and the census charges `synaptic_events` from the
//! crossbar's cached row popcounts — bit-identical to per-event counting.

/// Number of axon types (the plane stacks are per-type).
const TYPES: usize = 4;

/// Reusable bit-sliced counter scratch for one core's synaptic
/// integration. One kernel instance belongs to one core and is reused
/// every tick; planes grow to the high-water depth once and are cleared
/// (not freed) by [`SwarKernel::flush_into`].
#[derive(Debug, Clone)]
pub struct SwarKernel {
    /// Words per crossbar row (`neurons.div_ceil(64)`).
    words: usize,
    /// Per-type bit-plane stacks, each a plane-major `[depth × words]`
    /// array: plane `k` of type `t` is `planes[t][k*words..(k+1)*words]`.
    planes: [Vec<u64>; TYPES],
}

impl SwarKernel {
    /// A kernel for rows of `neurons` columns.
    pub fn new(neurons: usize) -> SwarKernel {
        SwarKernel {
            words: neurons.div_ceil(64),
            planes: Default::default(),
        }
    }

    /// Adds one active axon row (its packed crossbar words) to the counter
    /// stack of axon type `ty`.
    ///
    /// Bits beyond the neuron count must be zero — the crossbar's packing
    /// guarantees this for its rows.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not exactly `words_per_row` long or `ty` is not
    /// a valid axon-type index.
    #[inline]
    pub fn accumulate_row(&mut self, ty: usize, row: &[u64]) {
        assert_eq!(row.len(), self.words, "row width mismatch");
        let planes = &mut self.planes[ty];
        for (w, &bits) in row.iter().enumerate() {
            let mut carry = bits;
            let mut k = 0;
            while carry != 0 {
                let idx = k * self.words + w;
                if idx >= planes.len() {
                    // First time any counter reaches 2^k: open plane k.
                    planes.resize((k + 1) * self.words, 0);
                }
                let sum = planes[idx] ^ carry;
                carry &= planes[idx];
                planes[idx] = sum;
                k += 1;
            }
        }
    }

    /// Scatters the accumulated per-neuron counts into `counts` (layout
    /// `counts[neuron * 4 + ty]`, the core's phase-2 counter block) and
    /// clears the planes for the next tick.
    ///
    /// # Panics
    ///
    /// Panics if a set plane bit addresses a neuron outside `counts` (only
    /// possible when a row violated the zero-tail-bits contract).
    pub fn flush_into(&mut self, counts: &mut [u32]) {
        for (ty, planes) in self.planes.iter_mut().enumerate() {
            for (k, plane) in planes.chunks_exact_mut(self.words).enumerate() {
                let weight = 1u32 << k;
                for (w, word) in plane.iter_mut().enumerate() {
                    let mut bits = std::mem::take(word);
                    while bits != 0 {
                        let neuron = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        counts[neuron * TYPES + ty] += weight;
                    }
                }
            }
        }
    }

    /// Like [`SwarKernel::flush_into`], but scattering into a *type-major
    /// planar* counter block: plane `ty` is `counts[ty*n..(ty+1)*n]` with
    /// `n = counts.len() / 4` neurons — the layout the uniform-core
    /// vectorised scan consumes with unit stride. The `u16` lanes are
    /// exact: a per-type count is bounded by the core's axon count (≤ 256).
    ///
    /// # Panics
    ///
    /// Panics if `counts.len()` is not a multiple of 4, or if a set plane
    /// bit addresses a neuron outside a plane (only possible when a row
    /// violated the zero-tail-bits contract).
    pub fn flush_planar(&mut self, counts: &mut [u16]) {
        assert!(
            counts.len().is_multiple_of(TYPES),
            "planar counts must hold 4 planes"
        );
        let neurons = counts.len() / TYPES;
        for (ty, planes) in self.planes.iter_mut().enumerate() {
            let base = ty * neurons;
            for (k, plane) in planes.chunks_exact_mut(self.words).enumerate() {
                let weight = 1u16 << k;
                for (w, word) in plane.iter_mut().enumerate() {
                    let mut bits = std::mem::take(word);
                    while bits != 0 {
                        let neuron = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        counts[base + neuron] += weight;
                    }
                }
            }
        }
    }
}

/// Lane-extended bit-sliced counters: one kernel accumulating the same
/// crossbar rows for up to 64 *lanes* (replica chips) at once, sweeping
/// every lane of a word before moving on (the chip-major batched layout).
///
/// The cost model exploits that batched replicas mostly fire the *same*
/// axons: an axon active in lane subset `m` of the fused universe `u`
/// (`k = popcount(m)`, `L = popcount(u)`) is inserted either
///
/// * **directly** — once per lane in `m` (`k` ripple insertions), or
/// * **by complement** — once into the *shared* plane stack plus once per
///   lane in `u \ m` into that lane's *miss* stack (`1 + L - k`
///   insertions), whichever is cheaper (`2k > L + 1` picks complement).
///
/// A lane's exact count is then `shared + pos - miss`. The subtraction
/// cannot underflow: every miss insertion's row was also inserted into
/// the shared stack, so `shared ≥ miss` pointwise, and the `u16`
/// intermediate is bounded by `2 × axons ≤ 512`. At high drive overlap
/// this cuts per-axon work from `O(lanes)` to `O(1)` amortised.
#[derive(Debug, Clone)]
pub struct LaneSwarKernel {
    /// Words per crossbar row (`neurons.div_ceil(64)`).
    words: usize,
    /// Neuron columns per row (scratch is `TYPES × neurons` planar).
    neurons: usize,
    /// Number of lanes this kernel serves (1..=64).
    lanes: usize,
    /// Rows active in *every* fused lane (complement-mode insertions).
    shared: [Vec<u64>; TYPES],
    /// Per-lane additive stacks (direct-mode insertions).
    pos: Vec<[Vec<u64>; TYPES]>,
    /// Per-lane subtractive stacks (complement-mode corrections).
    miss: Vec<[Vec<u64>; TYPES]>,
    /// Planar flush of the shared stack, copied into each lane's counts.
    scratch: Vec<u16>,
}

/// Carry-save ripple insertion of one row into a plane stack.
#[inline]
fn insert_row(planes: &mut Vec<u64>, words: usize, row: &[u64]) {
    for (w, &bits) in row.iter().enumerate() {
        let mut carry = bits;
        let mut k = 0;
        while carry != 0 {
            let idx = k * words + w;
            if idx >= planes.len() {
                planes.resize((k + 1) * words, 0);
            }
            let sum = planes[idx] ^ carry;
            carry &= planes[idx];
            planes[idx] = sum;
            k += 1;
        }
    }
}

/// Scatters a plane stack into a type-major planar `u16` block, adding
/// (`ADD = true`) or subtracting, and clears the planes.
#[inline]
fn flush_planar_signed<const ADD: bool>(
    planes: &mut [Vec<u64>; TYPES],
    words: usize,
    neurons: usize,
    counts: &mut [u16],
) {
    for (ty, stack) in planes.iter_mut().enumerate() {
        let base = ty * neurons;
        for (k, plane) in stack.chunks_exact_mut(words).enumerate() {
            let weight = 1u16 << k;
            for (w, word) in plane.iter_mut().enumerate() {
                let mut bits = std::mem::take(word);
                while bits != 0 {
                    let neuron = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if ADD {
                        counts[base + neuron] += weight;
                    } else {
                        counts[base + neuron] -= weight;
                    }
                }
            }
        }
    }
}

impl LaneSwarKernel {
    /// A kernel for rows of `neurons` columns across `lanes` replicas.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= lanes <= 64` (lane sets travel as `u64` masks).
    pub fn new(neurons: usize, lanes: usize) -> LaneSwarKernel {
        assert!((1..=64).contains(&lanes), "lanes must be in 1..=64");
        LaneSwarKernel {
            words: neurons.div_ceil(64),
            neurons,
            lanes,
            shared: Default::default(),
            pos: (0..lanes).map(|_| Default::default()).collect(),
            miss: (0..lanes).map(|_| Default::default()).collect(),
            scratch: vec![0; neurons * TYPES],
        }
    }

    /// Number of lanes this kernel serves.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Adds one axon row of type `ty`, active in the lanes of `mask`,
    /// where `universe` is the set of lanes fused for this core (the
    /// lanes that will be flushed). Chooses direct vs complement
    /// insertion by cost.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not exactly `words_per_row` long, `mask` is not
    /// a subset of `universe`, or `universe` addresses lanes beyond the
    /// kernel's lane count.
    #[inline]
    pub fn accumulate_row_lanes(&mut self, ty: usize, row: &[u64], mask: u64, universe: u64) {
        assert_eq!(row.len(), self.words, "row width mismatch");
        assert_eq!(
            mask & !universe,
            0,
            "mask must be within the fused universe"
        );
        if self.lanes < 64 {
            assert_eq!(universe >> self.lanes, 0, "universe beyond lane count");
        }
        if mask == 0 {
            return;
        }
        let k = mask.count_ones() as u64;
        let l = universe.count_ones() as u64;
        if 2 * k <= l + 1 {
            // Direct: insert into each active lane's positive stack.
            let mut m = mask;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                m &= m - 1;
                insert_row(&mut self.pos[lane][ty], self.words, row);
            }
        } else {
            // Complement: one shared insert plus per-missing-lane fixups.
            insert_row(&mut self.shared[ty], self.words, row);
            let mut m = universe & !mask;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                m &= m - 1;
                insert_row(&mut self.miss[lane][ty], self.words, row);
            }
        }
    }

    /// Flushes the shared stack into the internal planar scratch. Call
    /// once per tick, after all rows and before any [`Self::flush_lane`].
    pub fn flush_shared(&mut self) {
        self.scratch.fill(0);
        flush_planar_signed::<true>(
            &mut self.shared,
            self.words,
            self.neurons,
            &mut self.scratch,
        );
    }

    /// Materialises one lane's exact type-major planar counts
    /// (`shared + pos - miss`) into `counts` and clears that lane's
    /// stacks. Requires a prior [`Self::flush_shared`] this tick.
    ///
    /// # Panics
    ///
    /// Panics if `counts` is not `4 × neurons` long or `lane` is out of
    /// range.
    pub fn flush_lane(&mut self, lane: usize, counts: &mut [u16]) {
        counts.copy_from_slice(&self.scratch);
        flush_planar_signed::<true>(&mut self.pos[lane], self.words, self.neurons, counts);
        flush_planar_signed::<false>(&mut self.miss[lane], self.words, self.neurons, counts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossbar::Crossbar;

    /// Scalar reference: per-bit row walk, identical to the sparse path.
    fn scalar_counts(xb: &Crossbar, types: &[usize], active: &[usize]) -> Vec<u32> {
        let mut counts = vec![0u32; xb.neurons() * TYPES];
        for &axon in active {
            for neuron in xb.row_neurons(axon) {
                counts[neuron * TYPES + types[axon]] += 1;
            }
        }
        counts
    }

    fn swar_counts(xb: &Crossbar, types: &[usize], active: &[usize]) -> Vec<u32> {
        let mut kernel = SwarKernel::new(xb.neurons());
        let mut counts = vec![0u32; xb.neurons() * TYPES];
        for &axon in active {
            kernel.accumulate_row(types[axon], xb.row_words(axon));
        }
        kernel.flush_into(&mut counts);
        counts
    }

    #[test]
    fn matches_scalar_on_dense_full_core() {
        let mut xb = Crossbar::new(256, 256);
        let mut state = 0x1234_5678u32;
        let types: Vec<usize> = (0..256).map(|a| a % TYPES).collect();
        for a in 0..256 {
            for n in 0..256 {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                if state & 3 == 0 {
                    xb.set(a, n, true);
                }
            }
        }
        let all: Vec<usize> = (0..256).collect();
        assert_eq!(
            swar_counts(&xb, &types, &all),
            scalar_counts(&xb, &types, &all)
        );
    }

    #[test]
    fn matches_scalar_on_ragged_width() {
        // 70 neurons: a full word plus a 6-bit tail.
        let mut xb = Crossbar::new(10, 70);
        let types: Vec<usize> = (0..10).map(|a| (a * 3) % TYPES).collect();
        for a in 0..10 {
            for n in 0..70 {
                if (a + n) % 3 == 0 {
                    xb.set(a, n, true);
                }
            }
        }
        let active = [0, 3, 4, 7, 9];
        assert_eq!(
            swar_counts(&xb, &types, &active),
            scalar_counts(&xb, &types, &active)
        );
    }

    #[test]
    fn carry_chain_counts_past_plane_boundaries() {
        // 64 identical rows driving one neuron of one type: the counter
        // must ripple through planes 0..=5 and read back exactly 64.
        let mut xb = Crossbar::new(64, 8);
        for a in 0..64 {
            xb.set(a, 5, true);
        }
        let types = vec![2usize; 64];
        let all: Vec<usize> = (0..64).collect();
        let counts = swar_counts(&xb, &types, &all);
        assert_eq!(counts[5 * TYPES + 2], 64);
        assert_eq!(counts.iter().map(|&c| c as u64).sum::<u64>(), 64);
    }

    #[test]
    fn kernel_state_clears_between_ticks() {
        let mut xb = Crossbar::new(4, 100);
        xb.set(0, 99, true);
        xb.set(1, 0, true);
        let mut kernel = SwarKernel::new(100);
        let mut counts = vec![0u32; 100 * TYPES];
        kernel.accumulate_row(0, xb.row_words(0));
        kernel.accumulate_row(0, xb.row_words(1));
        kernel.flush_into(&mut counts);
        assert_eq!(counts[99 * TYPES], 1);
        assert_eq!(counts[0], 1);
        // Second tick on fresh counters: no residue from the first.
        counts.fill(0);
        kernel.accumulate_row(1, xb.row_words(1));
        kernel.flush_into(&mut counts);
        assert_eq!(counts[1], 1);
        assert_eq!(counts.iter().map(|&c| c as u64).sum::<u64>(), 1);
    }

    #[test]
    fn planar_flush_matches_interleaved_flush() {
        // Same accumulation, both extraction layouts: interleaved
        // `[n*4 + ty]` and type-major planar `[ty*n + n]` must agree
        // entry for entry, and both must leave the kernel cleared.
        let mut rng = 0x1234_5678_u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let neurons = 150;
        let axons = 40;
        let mut xb = Crossbar::new(axons, neurons);
        for a in 0..axons {
            for n in 0..neurons {
                if next() % 3 == 0 {
                    xb.set(a, n, true);
                }
            }
        }
        let mut a = SwarKernel::new(neurons);
        let mut b = SwarKernel::new(neurons);
        for axon in 0..axons {
            a.accumulate_row(axon % 4, xb.row_words(axon));
            b.accumulate_row(axon % 4, xb.row_words(axon));
        }
        let mut interleaved = vec![0u32; neurons * TYPES];
        let mut planar = vec![0u16; neurons * TYPES];
        a.flush_into(&mut interleaved);
        b.flush_planar(&mut planar);
        for n in 0..neurons {
            for ty in 0..TYPES {
                assert_eq!(
                    interleaved[n * TYPES + ty],
                    u32::from(planar[ty * neurons + n]),
                    "neuron {n} type {ty}"
                );
            }
        }
        // Both kernels are clear: a second flush yields all zeros.
        let mut residue = vec![0u16; neurons * TYPES];
        b.flush_planar(&mut residue);
        assert!(residue.iter().all(|&c| c == 0));
    }

    /// Reference for the lane kernel: one independent solo kernel per
    /// lane, each fed exactly the rows whose mask includes it.
    fn lane_reference(
        xb: &Crossbar,
        types: &[usize],
        events: &[(usize, u64)],
        lanes: usize,
    ) -> Vec<Vec<u16>> {
        (0..lanes)
            .map(|lane| {
                let mut k = SwarKernel::new(xb.neurons());
                for &(axon, mask) in events {
                    if mask & (1 << lane) != 0 {
                        k.accumulate_row(types[axon], xb.row_words(axon));
                    }
                }
                let mut counts = vec![0u16; xb.neurons() * TYPES];
                k.flush_planar(&mut counts);
                counts
            })
            .collect()
    }

    #[test]
    fn lane_kernel_matches_independent_solo_kernels() {
        // Random crossbar, random per-axon lane masks over varying lane
        // counts: every lane's flushed counts must equal an independent
        // solo kernel fed the same rows — covering both the direct and
        // complement insertion modes (masks from sparse to near-full).
        let mut rng = 0x9e37_79b9_7f4a_7c15_u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for &lanes in &[1usize, 2, 3, 8, 13] {
            let neurons = 130; // two words plus a two-bit tail
            let axons = 48;
            let mut xb = Crossbar::new(axons, neurons);
            let types: Vec<usize> = (0..axons).map(|a| (a * 7) % TYPES).collect();
            for a in 0..axons {
                for n in 0..neurons {
                    if next() % 3 == 0 {
                        xb.set(a, n, true);
                    }
                }
            }
            let universe = if lanes == 64 {
                u64::MAX
            } else {
                (1u64 << lanes) - 1
            };
            let events: Vec<(usize, u64)> = (0..axons)
                .map(|a| {
                    // Mix sparse, dense, full, and empty masks.
                    let mask = match a % 4 {
                        0 => next() & universe,
                        1 => universe,
                        2 => universe & !(1 << (next() as usize % lanes)),
                        _ => (1 << (next() as usize % lanes)) & universe,
                    };
                    (a, mask)
                })
                .collect();
            let mut kernel = LaneSwarKernel::new(neurons, lanes);
            for &(axon, mask) in &events {
                kernel.accumulate_row_lanes(types[axon], xb.row_words(axon), mask, universe);
            }
            kernel.flush_shared();
            let reference = lane_reference(&xb, &types, &events, lanes);
            let mut counts = vec![0u16; neurons * TYPES];
            for (lane, expected) in reference.iter().enumerate() {
                kernel.flush_lane(lane, &mut counts);
                assert_eq!(&counts, expected, "lanes={lanes} lane={lane}");
            }
        }
    }

    #[test]
    fn lane_kernel_clears_between_ticks_and_honours_partial_universes() {
        // Tick 1 fuses lanes {0,2} only; tick 2 fuses all lanes. No
        // residue may leak across ticks, and lanes outside the universe
        // must never accumulate state.
        let neurons = 70;
        let mut xb = Crossbar::new(6, neurons);
        for a in 0..6 {
            for n in 0..neurons {
                if (a + n) % 2 == 0 {
                    xb.set(a, n, true);
                }
            }
        }
        let types = [0usize, 1, 2, 3, 0, 1];
        let mut kernel = LaneSwarKernel::new(neurons, 3);

        // Tick 1: universe {0,2}; axons 0..4 active in both, axon 4 only
        // in lane 2 (forces a complement insert with a miss for lane 0).
        let u1 = 0b101;
        for (a, &ty) in types.iter().enumerate().take(4) {
            kernel.accumulate_row_lanes(ty, xb.row_words(a), u1, u1);
        }
        kernel.accumulate_row_lanes(types[4], xb.row_words(4), 0b100, u1);
        kernel.flush_shared();
        let r1 = lane_reference(
            &xb,
            &types,
            &[(0, u1), (1, u1), (2, u1), (3, u1), (4, 0b100)],
            3,
        );
        let mut counts = vec![0u16; neurons * TYPES];
        for lane in [0usize, 2] {
            kernel.flush_lane(lane, &mut counts);
            assert_eq!(counts, r1[lane], "tick1 lane={lane}");
        }

        // Tick 2: full universe, different activity. All three lanes
        // must read exactly their own reference — in particular lane 1,
        // which was outside tick 1's universe.
        let u2 = 0b111;
        kernel.accumulate_row_lanes(types[5], xb.row_words(5), 0b011, u2);
        kernel.accumulate_row_lanes(types[0], xb.row_words(0), 0b110, u2);
        kernel.flush_shared();
        let r2 = lane_reference(&xb, &types, &[(5, 0b011), (0, 0b110)], 3);
        for (lane, expected) in r2.iter().enumerate() {
            kernel.flush_lane(lane, &mut counts);
            assert_eq!(&counts, expected, "tick2 lane={lane}");
        }
    }
}
