//! Spike destinations and delivery errors.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A relative core offset, as carried in a spike packet (`dx` east-positive,
/// `dy` north-positive). `(0, 0)` addresses the local core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoreOffset {
    /// Horizontal hops (east positive).
    pub dx: i32,
    /// Vertical hops (north positive).
    pub dy: i32,
}

impl CoreOffset {
    /// The local core.
    pub const LOCAL: CoreOffset = CoreOffset { dx: 0, dy: 0 };

    /// Creates an offset.
    pub const fn new(dx: i32, dy: i32) -> CoreOffset {
        CoreOffset { dx, dy }
    }

    /// Manhattan distance of the offset — the number of mesh hops a packet
    /// travels under dimension-order routing.
    pub const fn hops(self) -> u32 {
        self.dx.unsigned_abs() + self.dy.unsigned_abs()
    }
}

impl fmt::Display for CoreOffset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:+}, {:+})", self.dx, self.dy)
    }
}

/// The axon endpoint a neuron's spike is wired to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AxonTarget {
    /// Relative offset to the destination core.
    pub offset: CoreOffset,
    /// Destination axon index within that core.
    pub axon: u16,
    /// Axonal delay in ticks (`1..=15`).
    pub delay: u8,
}

impl AxonTarget {
    /// Creates a target on the local core.
    pub const fn local(axon: u16, delay: u8) -> AxonTarget {
        AxonTarget {
            offset: CoreOffset::LOCAL,
            axon,
            delay,
        }
    }
}

/// Where a neuron's output spike goes.
///
/// Each neuron has exactly one destination — multicast requires splitter
/// neurons, as on the silicon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Destination {
    /// The neuron's output is unused.
    #[default]
    Disabled,
    /// An axon of some core (possibly this one).
    Axon(AxonTarget),
    /// An external output port of the chip.
    Output(u32),
}

/// Error returned by [`crate::NeurosynapticCore::deliver`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliverError {
    /// The axon index exceeds the core's axon count.
    NoSuchAxon(usize),
    /// The delay must be at most 15 ticks ahead (the scheduler ring depth).
    DelayTooLong(u64),
}

impl fmt::Display for DeliverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeliverError::NoSuchAxon(a) => write!(f, "axon {a} does not exist"),
            DeliverError::DelayTooLong(d) => {
                write!(
                    f,
                    "delivery {d} ticks ahead exceeds the 15-tick scheduler horizon"
                )
            }
        }
    }
}

impl std::error::Error for DeliverError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_hops_is_manhattan() {
        assert_eq!(CoreOffset::new(3, -4).hops(), 7);
        assert_eq!(CoreOffset::LOCAL.hops(), 0);
    }

    #[test]
    fn offset_display_signs() {
        assert_eq!(CoreOffset::new(-2, 5).to_string(), "(-2, +5)");
    }

    #[test]
    fn local_target_has_zero_offset() {
        let t = AxonTarget::local(7, 1);
        assert_eq!(t.offset, CoreOffset::LOCAL);
        assert_eq!(t.axon, 7);
    }

    #[test]
    fn default_destination_is_disabled() {
        assert_eq!(Destination::default(), Destination::Disabled);
    }
}
