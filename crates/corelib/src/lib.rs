//! # brainsim-core
//!
//! The neurosynaptic core: the unit of replication of a TrueNorth-class
//! chip. One core couples
//!
//! * **256 axons** (inputs), each tagged with an [`AxonType`],
//! * a **256 × 256 binary crossbar** ([`Crossbar`]) selecting which axon
//!   drives which neuron,
//! * **256 neurons** ([`brainsim_neuron::Neuron`]) with per-neuron parameter
//!   blocks and spike destinations, and
//! * a **16-slot scheduler** ([`Scheduler`]) implementing axonal delays of
//!   1–15 ticks.
//!
//! Evaluation is tick-synchronous: [`NeurosynapticCore::tick`] consumes the
//! axon events due this tick, integrates them through the crossbar, applies
//! leak/threshold/reset to every neuron, and returns the spikes produced.
//! Three evaluation strategies — [`EvalStrategy::Dense`],
//! [`EvalStrategy::Sparse`] and the word-parallel default
//! [`EvalStrategy::Swar`] (bit-sliced crossbar integration through
//! [`SwarKernel`], plus a struct-of-arrays fast path for fully
//! deterministic cores) — are bit-identical by construction (property
//! tested), mirroring the one-to-one equivalence between the silicon and
//! its simulator. The `force-scalar` feature pins the word-parallel
//! strategy to the scalar reference path for differential CI runs.
//!
//! ## Example
//!
//! ```
//! use brainsim_core::{CoreBuilder, Destination};
//! use brainsim_neuron::{AxonType, NeuronConfig, Weight};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut builder = CoreBuilder::new(16, 16); // small core for the example
//! let config = NeuronConfig::builder()
//!     .weight(AxonType::A0, Weight::new(10)?)
//!     .threshold(10)
//!     .build()?;
//! builder.axon_type(0, AxonType::A0)?;
//! builder.neuron(0, config, Destination::Output(0))?;
//! builder.synapse(0, 0, true)?;
//! let mut core = builder.build();
//!
//! core.deliver(0, 0)?; // axon event due at the next tick boundary
//! let fired = core.tick(0);
//! assert_eq!(fired, vec![0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod core_impl;
mod crossbar;
mod scheduler;
mod spike;
mod swar;

pub use core_impl::{
    repack_cores, tick_uniform_lanes, CoreBuildError, CoreBuilder, CoreFaultsState, CoreState,
    CoreStateError, CoreStats, EvalStrategy, NeurosynapticCore,
};
pub use crossbar::Crossbar;
pub use scheduler::{Scheduler, SCHEDULER_SLOTS};
pub use spike::{AxonTarget, CoreOffset, DeliverError, Destination};
pub use swar::{LaneSwarKernel, SwarKernel};

// Re-export for downstream convenience: the core's axon/neuron vocabulary
// and the fault-injection vocabulary accepted by `apply_faults`.
pub use brainsim_faults::{FaultInjector, FaultPlan, FaultStats};
pub use brainsim_neuron::{AxonType, Lfsr, NeuronConfig, Weight};

/// Number of axons in a full-size core.
pub const CORE_AXONS: usize = 256;
/// Number of neurons in a full-size core.
pub const CORE_NEURONS: usize = 256;
