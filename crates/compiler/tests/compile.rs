//! End-to-end compiler tests: logical network → chip, checked against the
//! direct interpreter.

use brainsim_compiler::{compile, interp::Interpreter, repair, CompileError, CompileOptions};
use brainsim_corelet::{connectors, Corelet, NeuronId, NodeRef};
use brainsim_neuron::NeuronConfig;

fn threshold(t: u32) -> NeuronConfig {
    NeuronConfig::builder().threshold(t).build().unwrap()
}

fn small_options() -> CompileOptions {
    CompileOptions {
        core_axons: 16,
        core_neurons: 16,
        relay_reserve: 4,
        anneal_iters: 500,
        ..CompileOptions::default()
    }
}

/// Raster equality helper against the interpreter oracle.
fn assert_matches_interpreter(
    corelet: &Corelet,
    options: &CompileOptions,
    ticks: u64,
    stimulus: impl Fn(u64) -> Vec<usize> + Copy,
) {
    let mut compiled = compile(corelet.network(), options).expect("compiles");
    let chip_raster = compiled.run(ticks, stimulus);
    let mut oracle = Interpreter::new(corelet.network(), 1);
    let oracle_raster = oracle.run(ticks, stimulus);
    assert_eq!(chip_raster, oracle_raster, "corelet '{}'", corelet.name());
}

#[test]
fn single_relay_round_trip() {
    let mut c = Corelet::new("relay", 1);
    let n = c.add_neuron(threshold(1));
    c.connect(NodeRef::Input(0), n, 1, 1).unwrap();
    c.mark_output(n).unwrap();
    assert_matches_interpreter(&c, &small_options(), 6, |t| {
        if t == 0 {
            vec![0]
        } else {
            vec![]
        }
    });
}

#[test]
fn chain_with_mixed_delays_round_trip() {
    let mut c = Corelet::new("chain", 1);
    let a = c.add_neuron(threshold(2));
    let b = c.add_neuron(threshold(3));
    let d = c.add_neuron(threshold(1));
    c.connect(NodeRef::Input(0), a, 2, 1).unwrap();
    c.connect(NodeRef::Neuron(a), b, 3, 4).unwrap();
    c.connect(NodeRef::Neuron(b), d, 1, 2).unwrap();
    c.mark_output(d).unwrap();
    assert_matches_interpreter(&c, &small_options(), 20, |t| {
        if t % 5 == 0 {
            vec![0]
        } else {
            vec![]
        }
    });
}

#[test]
fn network_spanning_many_cores_round_trip() {
    // 40 neurons with core capacity 16 → at least 4 cores (with reserve 4,
    // 12 usable per core). Feed-forward layers with delay-2 links so the
    // splitter constraint is satisfied.
    let mut c = Corelet::new("layers", 4);
    let layer1 = c.add_population(threshold(1), 20);
    let layer2 = c.add_population(threshold(2), 20);
    for (i, &n) in layer1.iter().enumerate() {
        c.connect(NodeRef::Input(i % 4), n, 1, 1).unwrap();
    }
    for (i, &n2) in layer2.iter().enumerate() {
        let pre = layer1[i % layer1.len()];
        c.connect(NodeRef::Neuron(pre), n2, 2, 2).unwrap();
        c.connect(NodeRef::Neuron(layer1[(i + 7) % layer1.len()]), n2, 2, 3)
            .unwrap();
    }
    for &n2 in &layer2 {
        c.mark_output(n2).unwrap();
    }
    let compiled = compile(c.network(), &small_options()).expect("compiles");
    assert!(
        compiled.report().cores >= 3,
        "cores = {}",
        compiled.report().cores
    );
    assert_matches_interpreter(&c, &small_options(), 25, |t| {
        if t % 3 == 0 {
            vec![0, 2]
        } else if t % 3 == 1 {
            vec![1]
        } else {
            vec![3]
        }
    });
}

#[test]
fn splitter_preserves_end_to_end_delays() {
    // One source fanning out to many targets with distinct delays — forces
    // hub + relay insertion; delays must still be exact.
    let mut c = Corelet::new("fanout", 1);
    let src = c.add_neuron(threshold(1));
    c.connect(NodeRef::Input(0), src, 1, 1).unwrap();
    let targets = c.add_population(threshold(1), 30);
    for (i, &t) in targets.iter().enumerate() {
        let delay = 2 + (i % 8) as u8;
        c.connect(NodeRef::Neuron(src), t, 1, delay).unwrap();
        c.mark_output(t).unwrap();
    }
    let compiled = compile(c.network(), &small_options()).expect("compiles");
    assert!(compiled.report().relays > 0, "fan-out must insert relays");
    assert_matches_interpreter(&c, &small_options(), 16, |t| {
        if t == 0 {
            vec![0]
        } else {
            vec![]
        }
    });
}

#[test]
fn output_tap_adds_one_tick_for_tapped_ports() {
    // An output neuron that also drives an internal synapse gets a tap
    // relay: its port fires one tick after the neuron itself.
    let mut c = Corelet::new("tap", 1);
    let a = c.add_neuron(threshold(1));
    let b = c.add_neuron(threshold(1));
    c.connect(NodeRef::Input(0), a, 1, 1).unwrap();
    c.connect(NodeRef::Neuron(a), b, 1, 1).unwrap();
    c.mark_output(a).unwrap(); // tapped (has fan-out)
    c.mark_output(b).unwrap(); // direct
    let mut compiled = compile(c.network(), &small_options()).unwrap();
    compiled.inject(0, 0).unwrap();
    let raster = compiled.run(5, |_| vec![]);
    // a fires at t=1; the tapped port reports with the fixed 2-tick tap
    // latency at t=3. b fires (and reports directly) at t=2.
    let port_a: Vec<usize> = raster
        .iter()
        .enumerate()
        .filter_map(|(t, r)| r[0].then_some(t))
        .collect();
    let port_b: Vec<usize> = raster
        .iter()
        .enumerate()
        .filter_map(|(t, r)| r[1].then_some(t))
        .collect();
    assert_eq!(port_a, vec![3]);
    assert_eq!(port_b, vec![2]);
}

#[test]
fn four_distinct_weights_map_to_types() {
    let mut c = Corelet::new("weights", 4);
    let n = c.add_neuron(threshold(10));
    c.connect(NodeRef::Input(0), n, 1, 1).unwrap();
    c.connect(NodeRef::Input(1), n, 2, 1).unwrap();
    c.connect(NodeRef::Input(2), n, 3, 1).unwrap();
    c.connect(NodeRef::Input(3), n, 4, 1).unwrap();
    c.mark_output(n).unwrap();
    assert_matches_interpreter(&c, &small_options(), 8, |t| {
        if t == 0 {
            vec![0, 1, 2, 3]
        } else if t == 3 {
            vec![2, 3]
        } else {
            vec![]
        }
    });
}

#[test]
fn five_distinct_weights_rejected() {
    let mut c = Corelet::new("too-many", 5);
    let n = c.add_neuron(threshold(10));
    for (i, w) in [1, 2, 3, 4, 5].into_iter().enumerate() {
        c.connect(NodeRef::Input(i), n, w, 1).unwrap();
    }
    let err = compile(c.network(), &small_options()).unwrap_err();
    assert_eq!(
        err,
        CompileError::TooManyWeights {
            neuron: 0,
            distinct: 5
        }
    );
}

#[test]
fn delay_one_multicore_fanout_rejected() {
    // Force the source's targets into different cores (capacity 4 neurons
    // with reserve 2 → 2 usable per core) with delay-1 links.
    let options = CompileOptions {
        core_axons: 8,
        core_neurons: 4,
        relay_reserve: 2,
        anneal_iters: 0,
        ..CompileOptions::default()
    };
    let mut c = Corelet::new("d1", 1);
    let src = c.add_neuron(threshold(1));
    c.connect(NodeRef::Input(0), src, 1, 1).unwrap();
    let targets = c.add_population(threshold(1), 6);
    for &t in &targets {
        c.connect(NodeRef::Neuron(src), t, 1, 1).unwrap();
    }
    let err = compile(c.network(), &options).unwrap_err();
    assert!(
        matches!(err, CompileError::DelayTooSmallForFanout { .. }),
        "got {err:?}"
    );
}

#[test]
fn parallel_synapses_merge_additively() {
    let mut c = Corelet::new("parallel", 1);
    let n = c.add_neuron(threshold(6));
    // Three parallel weight-2 synapses, same delay → merged weight 6.
    for _ in 0..3 {
        c.connect(NodeRef::Input(0), n, 2, 1).unwrap();
    }
    c.mark_output(n).unwrap();
    let mut compiled = compile(c.network(), &small_options()).unwrap();
    compiled.inject(0, 0).unwrap();
    let raster = compiled.run(3, |_| vec![]);
    assert!(
        raster[1][0],
        "merged weight must reach threshold in one event"
    );
}

#[test]
fn random_network_matches_interpreter() {
    let mut c = Corelet::new("random", 3);
    let pop = c.add_population(threshold(3), 24);
    let pres: Vec<NodeRef> = pop.iter().map(|&p| NodeRef::Neuron(p)).collect();
    // Random recurrent wiring with delay 2 (splitter-safe) and weight 2.
    connectors::random(&mut c, &pres, &pop, 2, 2, 40, 99).unwrap();
    for i in 0..3 {
        c.connect(NodeRef::Input(i), pop[i * 5], 3, 1).unwrap();
    }
    for &p in pop.iter().take(6) {
        c.mark_output(p).unwrap();
    }
    // Mark-output on neurons with fan-out inserts taps (+1 tick); the
    // interpreter reports fire ticks. Compare with shifted expectation by
    // checking spike COUNTS per port instead of exact ticks when tapped.
    let mut compiled = compile(c.network(), &small_options()).unwrap();
    let stim = |t: u64| {
        if t.is_multiple_of(4) {
            vec![0, 1, 2]
        } else {
            vec![]
        }
    };
    let chip_raster = compiled.run(40, stim);
    let mut oracle = Interpreter::new(c.network(), 1);
    let oracle_raster = oracle.run(40, stim);
    for port in 0..6 {
        let chip_count: usize = chip_raster.iter().filter(|r| r[port]).count();
        let oracle_count: usize = oracle_raster.iter().filter(|r| r[port]).count();
        // Tap latency can defer the last spike past the horizon by 1.
        assert!(
            (chip_count as i64 - oracle_count as i64).abs() <= 1,
            "port {port}: chip {chip_count} vs oracle {oracle_count}"
        );
    }
}

#[test]
fn annealing_does_not_worsen_placement() {
    let mut c = Corelet::new("placement", 2);
    let pop = c.add_population(threshold(2), 60);
    for (i, &n) in pop.iter().enumerate() {
        c.connect(NodeRef::Input(i % 2), n, 2, 1).unwrap();
        if i > 0 {
            c.connect(NodeRef::Neuron(pop[i - 1]), n, 2, 2).unwrap();
        }
    }
    let compiled = compile(c.network(), &small_options()).unwrap();
    let report = compiled.report();
    assert!(report.annealed_cost <= report.greedy_cost);
    assert!(report.cores > 1);
}

#[test]
fn grid_too_small_rejected() {
    let options = CompileOptions {
        grid: Some((1, 1)),
        core_neurons: 4,
        relay_reserve: 0,
        ..small_options()
    };
    let mut c = Corelet::new("big", 1);
    let pop = c.add_population(threshold(1), 20);
    for &n in &pop {
        c.connect(NodeRef::Input(0), n, 1, 1).unwrap();
    }
    let err = compile(c.network(), &options).unwrap_err();
    assert!(matches!(err, CompileError::GridTooSmall { .. }));
}

#[test]
fn faulty_cells_are_avoided_and_behaviour_is_preserved() {
    // A multi-core network placed on a grid with defective cells: no core
    // may land on a fault, the grid grows to compensate, and the observable
    // behaviour still matches the oracle.
    let mut c = Corelet::new("yield", 2);
    let pop = c.add_population(threshold(2), 40);
    for (i, &n) in pop.iter().enumerate() {
        c.connect(NodeRef::Input(i % 2), n, 2, 1).unwrap();
        if i >= 1 {
            c.connect(NodeRef::Neuron(pop[i - 1]), n, 2, 2).unwrap();
        }
    }
    let r1 = c.add_neuron(threshold(1));
    c.connect(NodeRef::Neuron(pop[39]), r1, 1, 2).unwrap();
    c.mark_output(r1).unwrap();

    let faulty = vec![(0, 0), (1, 1), (0, 1)];
    let options = CompileOptions {
        faulty_cells: faulty.clone(),
        ..small_options()
    };
    let mut compiled = compile(c.network(), &options).expect("compiles around faults");
    // No core placed on a faulty cell: run and check census cores > 0 while
    // injecting; the placement itself is validated via the chip config and
    // the fact that each faulty cell hosts no neurons.
    for &(x, y) in &faulty {
        let core = compiled.chip().core(x, y).expect("cell on grid");
        assert!(
            (0..core.neurons())
                .all(|n| matches!(core.destination(n), brainsim_core::Destination::Disabled)),
            "faulty cell ({x},{y}) hosts logic"
        );
    }
    let stim = |t: u64| {
        if t.is_multiple_of(2) {
            vec![0, 1]
        } else {
            vec![]
        }
    };
    let chip_raster = compiled.run(60, stim);
    let mut oracle = Interpreter::new(c.network(), 1);
    assert_eq!(chip_raster, oracle.run(60, stim));
}

#[test]
fn compilation_is_deterministic() {
    let build = || {
        let mut c = Corelet::new("det", 2);
        let pop = c.add_population(threshold(2), 30);
        for (i, &n) in pop.iter().enumerate() {
            c.connect(NodeRef::Input(i % 2), n, 2, 1).unwrap();
        }
        for &n in pop.iter().take(4) {
            c.mark_output(n).unwrap();
        }
        let mut compiled = compile(c.network(), &small_options()).unwrap();
        compiled.run(20, |t| if t % 2 == 0 { vec![0] } else { vec![1] })
    };
    assert_eq!(build(), build());
}

#[test]
fn report_counts_are_consistent() {
    let mut c = Corelet::new("report", 1);
    let NeuronId(_) = {
        let src = c.add_neuron(threshold(1));
        c.connect(NodeRef::Input(0), src, 1, 1).unwrap();
        let targets = c.add_population(threshold(1), 10);
        for &t in &targets {
            c.connect(NodeRef::Neuron(src), t, 1, 2).unwrap();
        }
        src
    };
    let compiled = compile(c.network(), &small_options()).unwrap();
    let r = compiled.report();
    assert_eq!(r.physical_neurons, 11 + r.relays);
    assert!(r.axons_used >= 2);
    assert!(r.grid.0 * r.grid.1 >= r.cores);
}

/// A relay chain that maps to several cores: `n` neurons, threshold 1,
/// chained with delay 1, head driven by input 0, tail marked output.
fn chain(n: usize) -> Corelet {
    let mut c = Corelet::new("chain", 1);
    let pop = c.add_population(threshold(1), n);
    c.connect(NodeRef::Input(0), pop[0], 1, 1).unwrap();
    for w in pop.windows(2) {
        c.connect(NodeRef::Neuron(w[0]), w[1], 1, 2).unwrap();
    }
    c.mark_output(pop[n - 1]).unwrap();
    c
}

#[test]
fn duplicate_faulty_cells_do_not_double_count_capacity() {
    // 6 neurons at 2 logical slots per core -> 3 cores; a 2x2 grid with
    // two *distinct* defects has exactly enough healthy cells. Before the
    // normalisation fix the duplicated entry was double-counted and this
    // rejected with GridTooSmall.
    let c = chain(6);
    let options = CompileOptions {
        core_axons: 8,
        core_neurons: 4,
        relay_reserve: 2,
        grid: Some((2, 2)),
        faulty_cells: vec![(0, 0), (0, 0), (0, 0)],
        ..small_options()
    };
    let compiled = compile(c.network(), &options).expect("duplicates must collapse");
    assert_eq!(
        compiled.network_map().faulty_cells,
        vec![(0, 0)],
        "retained map holds the normalised set"
    );
    assert!(compiled
        .network_map()
        .positions
        .iter()
        .all(|&p| p != (0, 0)));
}

#[test]
fn out_of_grid_faulty_cell_is_a_typed_error() {
    let c = chain(2);
    let options = CompileOptions {
        grid: Some((2, 2)),
        faulty_cells: vec![(5, 1)],
        ..small_options()
    };
    let err = compile(c.network(), &options).unwrap_err();
    assert_eq!(
        err,
        CompileError::FaultyCellOffGrid {
            cell: (5, 1),
            grid: (2, 2)
        }
    );
}

#[test]
fn repair_moves_only_the_condemned_cores() {
    let c = chain(12); // 6 cores at 2 logical slots per core
    let options = CompileOptions {
        core_axons: 8,
        core_neurons: 4,
        relay_reserve: 2,
        grid: Some((3, 3)),
        ..small_options()
    };
    let compiled = compile(c.network(), &options).expect("compiles");
    let map = compiled.network_map().clone();
    let condemned = vec![map.positions[2]];

    let repaired = repair(c.network(), &options, &map, &condemned).expect("repairs");
    assert_eq!(repaired.moves.len(), 1, "exactly the condemned core moves");
    assert_eq!(repaired.moves[0].from, condemned[0]);
    assert!(!map.positions.contains(&repaired.moves[0].to));

    let new_map = repaired.compiled.network_map();
    assert!(new_map.faulty_cells.contains(&condemned[0]));
    for (core, (&old, &new)) in map
        .positions
        .iter()
        .zip(new_map.positions.iter())
        .enumerate()
    {
        if core == repaired.moves[0].core {
            assert_ne!(old, new);
        } else {
            assert_eq!(old, new, "healthy core {core} must not move");
        }
    }

    // The repaired network still computes the same function.
    let mut fixed = repaired.compiled;
    let stim = |t: u64| if t.is_multiple_of(3) { vec![0] } else { vec![] };
    let raster = fixed.run(60, stim);
    let mut oracle = Interpreter::new(c.network(), 1);
    assert_eq!(raster, oracle.run(60, stim));
}

#[test]
fn repair_is_deterministic_and_identity_without_condemnations() {
    let c = chain(12);
    let options = CompileOptions {
        core_axons: 8,
        core_neurons: 4,
        relay_reserve: 2,
        grid: Some((3, 3)),
        ..small_options()
    };
    let compiled = compile(c.network(), &options).expect("compiles");
    let map = compiled.network_map().clone();

    let identity = repair(c.network(), &options, &map, &[]).expect("repairs");
    assert!(identity.moves.is_empty());
    assert_eq!(identity.compiled.network_map().positions, map.positions);

    let condemned = vec![map.positions[0], map.positions[3]];
    let a = repair(c.network(), &options, &map, &condemned).expect("repair a");
    let b = repair(c.network(), &options, &map, &condemned).expect("repair b");
    assert_eq!(a.moves, b.moves);
    assert_eq!(
        a.compiled.network_map().positions,
        b.compiled.network_map().positions
    );
}

#[test]
fn repair_without_spare_cells_reports_grid_too_small() {
    let c = chain(8); // 4 cores exactly fill a 2x2 grid
    let options = CompileOptions {
        core_axons: 8,
        core_neurons: 4,
        relay_reserve: 2,
        grid: Some((2, 2)),
        ..small_options()
    };
    let compiled = compile(c.network(), &options).expect("compiles");
    let map = compiled.network_map().clone();
    let err = repair(c.network(), &options, &map, &[map.positions[1]]).unwrap_err();
    assert!(matches!(err, CompileError::GridTooSmall { .. }));
}

#[test]
fn repair_rejects_off_grid_condemnations() {
    let c = chain(4);
    let options = CompileOptions {
        core_axons: 8,
        core_neurons: 4,
        relay_reserve: 2,
        grid: Some((2, 2)),
        ..small_options()
    };
    let compiled = compile(c.network(), &options).expect("compiles");
    let map = compiled.network_map().clone();
    let err = repair(c.network(), &options, &map, &[(9, 9)]).unwrap_err();
    assert!(matches!(err, CompileError::FaultyCellOffGrid { .. }));
}
