//! Property test: *any* mappable random logical network, compiled onto the
//! chip, produces exactly the interpreter oracle's output raster.
//!
//! This is the compiler's strongest correctness statement: partitioning,
//! splitter chains, axon-type colouring, input-axon replication and
//! placement may transform the network arbitrarily, but the observable
//! spike behaviour must be preserved tick for tick.

use brainsim_compiler::{compile, interp::Interpreter, CompileOptions};
use brainsim_corelet::{Corelet, NodeRef};
use brainsim_neuron::NeuronConfig;
use proptest::prelude::*;

/// A compact description of a random layered network.
#[derive(Debug, Clone)]
struct NetSpec {
    layers: Vec<usize>,
    thresholds: Vec<u32>,
    /// Per-synapse choices consumed in order: (weight index, delay, skip).
    edges: Vec<(u8, u8, bool)>,
    inputs: usize,
}

fn arb_netspec() -> impl Strategy<Value = NetSpec> {
    (
        proptest::collection::vec(1usize..8, 1..4),
        proptest::collection::vec(1u32..8, 3),
        proptest::collection::vec((0u8..4, 2u8..6, any::<bool>()), 64..256),
        1usize..4,
    )
        .prop_map(|(layers, thresholds, edges, inputs)| NetSpec {
            layers,
            thresholds,
            edges,
            inputs,
        })
}

/// Weight palette shared by all neurons (≤ 4 distinct values network-wide,
/// so every neuron satisfies the 4-weight constraint by construction).
const PALETTE: [i32; 4] = [1, 2, 3, -2];

fn build(spec: &NetSpec) -> Corelet {
    let mut corelet = Corelet::new("prop", spec.inputs);
    let mut edge_iter = spec.edges.iter().cycle();
    let mut next_edge = || *edge_iter.next().expect("cycle is infinite");

    let mut previous: Vec<NodeRef> = (0..spec.inputs).map(NodeRef::Input).collect();
    for (li, &width) in spec.layers.iter().enumerate() {
        let threshold = spec.thresholds[li % spec.thresholds.len()];
        let template = NeuronConfig::builder()
            .threshold(threshold)
            .build()
            .unwrap();
        let layer = corelet.add_population(template, width);
        for &node in &previous {
            for &post in &layer {
                let (wi, delay, skip) = next_edge();
                if skip {
                    continue;
                }
                corelet
                    .connect(node, post, PALETTE[wi as usize], delay)
                    .unwrap();
            }
        }
        previous = layer.iter().map(|&n| NodeRef::Neuron(n)).collect();
    }
    // Readout neurons (no fan-out → direct output ports, exact tick match).
    let readout_template = NeuronConfig::builder().threshold(1).build().unwrap();
    let readouts: Vec<_> = previous
        .iter()
        .map(|&pre| {
            let r = corelet.add_neuron(readout_template.clone());
            corelet.connect(pre, r, 1, 2).unwrap();
            corelet.mark_output(r).unwrap();
            r
        })
        .collect();
    let _ = readouts;
    corelet
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn compiled_network_matches_oracle(
        spec in arb_netspec(),
        seed in 1u32..1000,
        faults in proptest::collection::vec((0usize..6, 0usize..6), 0..4),
    ) {
        let corelet = build(&spec);
        let options = CompileOptions {
            core_axons: 16,
            core_neurons: 8,
            relay_reserve: 2,
            anneal_iters: 100,
            seed,
            faulty_cells: faults,
            ..CompileOptions::default()
        };
        let mut compiled = match compile(corelet.network(), &options) {
            Ok(c) => c,
            // Genuine infeasibilities (e.g. delay-constrained wide fan-out
            // beyond the splitter headroom) are allowed; correctness is
            // only claimed for networks that map.
            Err(_) => return Ok(()),
        };
        let stim = |t: u64| -> Vec<usize> {
            (0..spec.inputs)
                .filter(|&p| !(t + p as u64).is_multiple_of(3))
                .collect()
        };
        let chip_raster = compiled.run(50, stim);
        let mut oracle = Interpreter::new(corelet.network(), 1);
        let oracle_raster = oracle.run(50, stim);
        prop_assert_eq!(chip_raster, oracle_raster);
    }

    #[test]
    fn compilation_is_deterministic_in_its_inputs(spec in arb_netspec()) {
        let corelet = build(&spec);
        let options = CompileOptions {
            core_axons: 16,
            core_neurons: 8,
            relay_reserve: 2,
            anneal_iters: 200,
            ..CompileOptions::default()
        };
        let once = compile(corelet.network(), &options).map(|c| *c.report());
        let twice = compile(corelet.network(), &options).map(|c| *c.report());
        match (once, twice) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "nondeterministic outcome: {a:?} vs {b:?}"),
        }
    }
}
