//! Core placement: greedy seeding + simulated annealing.

use std::collections::HashMap;

use brainsim_faults::DetRng;

use crate::passes::Mapped;
use crate::CompileOptions;

/// Result of placement.
#[derive(Debug, Clone)]
pub(crate) struct Placement {
    /// Grid dimensions `(width, height)`.
    pub grid: (usize, usize),
    /// Position of each core.
    pub positions: Vec<(usize, usize)>,
    /// Σ traffic × Manhattan cost after greedy seeding.
    pub greedy_cost: u64,
    /// Cost after annealing.
    pub annealed_cost: u64,
    /// Cost of a seeded random permutation (placement-oblivious baseline).
    pub random_cost: u64,
    /// Total inter-core traffic weight (for mean-hop computation).
    pub total_traffic: u64,
}

/// Traffic between core pairs: weight = wires + fan-out size.
fn traffic(mapped: &Mapped) -> HashMap<(usize, usize), u64> {
    let mut t: HashMap<(usize, usize), u64> = HashMap::new();
    for (n, dest) in mapped.neuron_dest.iter().enumerate() {
        if let Some((target_core, axon, _)) = dest {
            let source_core = mapped.core_of[n];
            if source_core != *target_core {
                let key = (source_core.min(*target_core), source_core.max(*target_core));
                let width = mapped.axons[*target_core][*axon].posts.len() as u64;
                *t.entry(key).or_insert(0) += 1 + width;
            }
        }
    }
    t
}

fn cost(traffic: &HashMap<(usize, usize), u64>, positions: &[(usize, usize)]) -> u64 {
    traffic
        .iter()
        .map(|(&(a, b), &w)| {
            let (ax, ay) = positions[a];
            let (bx, by) = positions[b];
            w * ((ax.abs_diff(bx) + ay.abs_diff(by)) as u64)
        })
        .sum()
}

/// Places cores on the grid.
///
/// # Panics
///
/// Panics if the grid is too small (callers validate first via
/// [`grid_for`]).
pub(crate) fn place(mapped: &Mapped, options: &CompileOptions) -> Placement {
    let cores = mapped.cores.len();
    let grid = grid_for(cores, options);
    let (w, h) = grid;
    let usable_cells = w * h
        - options
            .faulty_cells
            .iter()
            .filter(|&&(x, y)| x < w && y < h)
            .count();
    assert!(usable_cells >= cores, "grid too small for {cores} cores");

    let t = traffic(mapped);
    let total_traffic: u64 = t.values().sum();
    let is_faulty = |x: usize, y: usize| options.faulty_cells.contains(&(x, y));

    // Greedy: order cores by total traffic weight, place each at the free
    // cell minimising cost to already-placed neighbours.
    let mut weight_of = vec![0u64; cores];
    for (&(a, b), &wt) in &t {
        weight_of[a] += wt;
        weight_of[b] += wt;
    }
    let mut order: Vec<usize> = (0..cores).collect();
    order.sort_by_key(|&c| u64::MAX - weight_of[c]);

    let mut positions = vec![(usize::MAX, usize::MAX); cores];
    let mut free: Vec<(usize, usize)> = (0..h)
        .flat_map(|y| (0..w).map(move |x| (x, y)))
        .filter(|&(x, y)| !is_faulty(x, y))
        .collect();
    // Neighbour lists for cost-to-placed evaluation.
    let mut adjacency: Vec<Vec<(usize, u64)>> = vec![Vec::new(); cores];
    for (&(a, b), &wt) in &t {
        adjacency[a].push((b, wt));
        adjacency[b].push((a, wt));
    }

    for &c in &order {
        // Cost of placing core c at candidate cell.
        let (best_i, _) = free
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| {
                let mut cost = 0u64;
                for &(other, wt) in &adjacency[c] {
                    let (ox, oy) = positions[other];
                    if ox != usize::MAX {
                        cost += wt * ((x.abs_diff(ox) + y.abs_diff(oy)) as u64);
                    }
                }
                // Prefer central cells as a tiebreak for isolated cores.
                let centre_bias = (x.abs_diff(w / 2) + y.abs_diff(h / 2)) as u64;
                (i, cost * 1000 + centre_bias)
            })
            .min_by_key(|&(_, c)| c)
            .expect("free cell available");
        positions[c] = free.swap_remove(best_i);
    }

    let greedy_cost = cost(&t, &positions);

    // Random-permutation baseline: the cost a placement-oblivious mapper
    // would pay (reported by the T3 experiment).
    let random_cost = {
        let mut rng = DetRng::from_seed(options.seed as u64 ^ 0xACE);
        let mut cells: Vec<(usize, usize)> = (0..h)
            .flat_map(|y| (0..w).map(move |x| (x, y)))
            .filter(|&(x, y)| !is_faulty(x, y))
            .collect();
        // Fisher–Yates.
        for i in (1..cells.len()).rev() {
            let j = rng.usize_below(i + 1);
            cells.swap(i, j);
        }
        let random_positions: Vec<(usize, usize)> = (0..cores).map(|c| cells[c]).collect();
        cost(&t, &random_positions)
    };

    // Simulated annealing over pairwise swaps (including empty cells) with
    // incremental (delta) cost evaluation: only the edges incident to the
    // moved cores are re-measured, so large placements get many effective
    // proposals.
    let mut rng = DetRng::from_seed(options.seed as u64);
    let mut current = greedy_cost;
    if options.anneal_iters > 0 && cores > 1 && total_traffic > 0 {
        let incident = |positions: &[(usize, usize)], core: usize| -> u64 {
            adjacency[core]
                .iter()
                .map(|&(other, wt)| {
                    let (ax, ay) = positions[core];
                    let (bx, by) = positions[other];
                    wt * ((ax.abs_diff(bx) + ay.abs_diff(by)) as u64)
                })
                .sum()
        };
        let mut cell_of: HashMap<(usize, usize), usize> =
            positions.iter().enumerate().map(|(c, &p)| (p, c)).collect();
        let start_t = (greedy_cost.max(1) as f64 / cores.max(1) as f64).max(1.0);
        let mut best_cost = current;
        let mut best_positions = positions.clone();
        for iter in 0..options.anneal_iters {
            let progress = iter as f64 / options.anneal_iters as f64;
            let temperature = start_t * (1.0 - progress).powi(2) + 1e-9;
            let a = rng.usize_below(cores);
            let target = (rng.usize_below(w), rng.usize_below(h));
            if is_faulty(target.0, target.1) {
                continue;
            }
            let b = cell_of.get(&target).copied();
            if b == Some(a) {
                continue;
            }
            // Local cost before the move (the a–b edge, if any, is counted
            // in both incident sums both before and after, so it cancels
            // out of the delta).
            let before = incident(&positions, a) + b.map(|b| incident(&positions, b)).unwrap_or(0);
            let old = positions[a];
            positions[a] = target;
            if let Some(b) = b {
                positions[b] = old;
            }
            let after = incident(&positions, a) + b.map(|b| incident(&positions, b)).unwrap_or(0);
            let proposed = if after >= before {
                current + (after - before)
            } else {
                current - (before - after)
            };
            let accept = proposed <= current || {
                let delta = (proposed - current) as f64;
                rng.next_f64() < (-delta / temperature).exp()
            };
            if accept {
                current = proposed;
                cell_of.remove(&old);
                cell_of.insert(target, a);
                if let Some(b) = b {
                    cell_of.insert(old, b);
                }
                if current < best_cost {
                    best_cost = current;
                    best_positions.clone_from(&positions);
                }
            } else {
                positions[a] = old;
                if let Some(b) = b {
                    positions[b] = target;
                }
            }
        }
        positions = best_positions;
        current = best_cost;
        debug_assert_eq!(
            current,
            cost(&t, &positions),
            "delta-cost bookkeeping drifted"
        );
    }

    Placement {
        grid,
        positions,
        greedy_cost,
        annealed_cost: current,
        random_cost,
        total_traffic,
    }
}

/// Minimal-move repair placement.
///
/// Keeps every core whose old cell is still healthy exactly where it was
/// and re-seats only the displaced cores (heaviest traffic first, index as
/// tiebreak) on the free healthy cell minimising the same greedy score the
/// seeding placement uses: traffic-weighted Manhattan cost to settled
/// neighbours, centre bias as tiebreak. No annealing — the point is a
/// small, deterministic diff, not a globally optimal re-layout.
///
/// Returns `None` when a displaced core has no free healthy cell left.
pub(crate) fn repair(
    mapped: &Mapped,
    grid: (usize, usize),
    old_positions: &[(usize, usize)],
    faulty: &[(usize, usize)],
) -> Option<Placement> {
    let (w, h) = grid;
    let is_faulty = |x: usize, y: usize| faulty.contains(&(x, y));
    let t = traffic(mapped);
    let total_traffic: u64 = t.values().sum();

    let mut weight_of = vec![0u64; old_positions.len()];
    let mut adjacency: Vec<Vec<(usize, u64)>> = vec![Vec::new(); old_positions.len()];
    for (&(a, b), &wt) in &t {
        weight_of[a] += wt;
        weight_of[b] += wt;
        adjacency[a].push((b, wt));
        adjacency[b].push((a, wt));
    }

    let mut positions = old_positions.to_vec();
    // A core counts towards a neighbour's cost only once it sits on a
    // healthy cell — either kept in place or already re-seated.
    let mut settled: Vec<bool> = positions
        .iter()
        .map(|&(x, y)| x < w && y < h && !is_faulty(x, y))
        .collect();
    let mut displaced: Vec<usize> = (0..positions.len()).filter(|&c| !settled[c]).collect();
    displaced.sort_by_key(|&c| (u64::MAX - weight_of[c], c));

    let mut taken = vec![false; w * h];
    for (c, &(x, y)) in positions.iter().enumerate() {
        if settled[c] {
            taken[y * w + x] = true;
        }
    }
    let mut free: Vec<(usize, usize)> = (0..h)
        .flat_map(|y| (0..w).map(move |x| (x, y)))
        .filter(|&(x, y)| !is_faulty(x, y) && !taken[y * w + x])
        .collect();

    for &c in &displaced {
        let (best_i, _) = free
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| {
                let mut cost = 0u64;
                for &(other, wt) in &adjacency[c] {
                    if settled[other] {
                        let (ox, oy) = positions[other];
                        cost += wt * ((x.abs_diff(ox) + y.abs_diff(oy)) as u64);
                    }
                }
                let centre_bias = (x.abs_diff(w / 2) + y.abs_diff(h / 2)) as u64;
                (i, cost * 1000 + centre_bias)
            })
            .min_by_key(|&(_, c)| c)?;
        positions[c] = free.swap_remove(best_i);
        settled[c] = true;
    }

    let repaired_cost = cost(&t, &positions);
    Some(Placement {
        grid,
        positions,
        greedy_cost: repaired_cost,
        annealed_cost: repaired_cost,
        random_cost: repaired_cost,
        total_traffic,
    })
}

/// Picks grid dimensions: explicit from options, else the smallest square
/// whose non-faulty cells can host every core.
pub(crate) fn grid_for(cores: usize, options: &CompileOptions) -> (usize, usize) {
    match options.grid {
        Some(g) => g,
        None => {
            let mut side = ((cores.max(1) as f64).sqrt().ceil() as usize).max(1);
            loop {
                let faulty = options
                    .faulty_cells
                    .iter()
                    .filter(|&&(x, y)| x < side && y < side)
                    .count();
                if side * side - faulty >= cores {
                    return (side, side);
                }
                side += 1;
            }
        }
    }
}
