//! Front-end passes: output taps, partitioning, splitter insertion and
//! axon-type assignment.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use brainsim_core::AxonType;
use brainsim_corelet::{LogicalNetwork, LogicalSynapse, NeuronId, NodeRef};
use brainsim_neuron::{NeuronConfig, Weight};

use crate::{CompileError, CompileOptions};

/// `(post, weight)` fan-out pairs of one axon.
type Posts = Vec<(usize, i32)>;
/// Groups of synapses keyed by `(target core, delay)`.
type SourceGroups = BTreeMap<(usize, u8), Posts>;
/// A pending splitter group: `(core, delay, posts)`.
type PendingGroup = (usize, u8, Posts);

/// Driver of a physical axon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Driver {
    /// External input port.
    Input(usize),
    /// Physical neuron index.
    Neuron(usize),
}

/// One physical axon of one core.
#[derive(Debug, Clone)]
pub(crate) struct AxonRecord {
    pub driver: Driver,
    /// Packet delay carried by spikes arriving on this axon.
    pub delay: u8,
    /// `(physical neuron, weight)` fan-out within the core.
    pub posts: Vec<(usize, i32)>,
}

/// Result of partitioning + splitting.
#[derive(Debug, Clone)]
pub(crate) struct Mapped {
    /// Behaviour templates of all physical neurons (logical + relays).
    pub templates: Vec<NeuronConfig>,
    /// Core index of each physical neuron.
    pub core_of: Vec<usize>,
    /// Members of each core, in local-index order.
    pub cores: Vec<Vec<usize>>,
    /// Axons of each core.
    pub axons: Vec<Vec<AxonRecord>>,
    /// Spike destination of each physical neuron:
    /// `(core, axon index, packet delay)`.
    pub neuron_dest: Vec<Option<(usize, usize, u8)>>,
    /// Physical neuron → output port.
    pub direct_output: HashMap<usize, u32>,
    /// Input port → `(core, axon index, delay)` taps.
    pub input_taps: Vec<Vec<(usize, usize, u8)>>,
    /// Relay neurons inserted (splitters + output taps).
    pub relays: usize,
}

/// Axon-type assignment and per-neuron weight tables.
#[derive(Debug, Clone)]
pub(crate) struct Typed {
    /// Per core, per axon: the assigned type.
    pub axon_types: Vec<Vec<AxonType>>,
    /// Per physical neuron: the 4-entry weight table.
    pub weight_tables: Vec<[Weight; 4]>,
}

fn relay_template() -> NeuronConfig {
    NeuronConfig::builder()
        .threshold(1)
        .build()
        .expect("relay template is valid")
}

/// Runs output taps, partitioning and splitter insertion.
pub(crate) fn map(net: &LogicalNetwork, options: &CompileOptions) -> Result<Mapped, CompileError> {
    // ---- Working copies -------------------------------------------------
    let mut templates: Vec<NeuronConfig> = net.neurons().to_vec();
    let mut synapses: Vec<LogicalSynapse> = net.synapses().to_vec();
    let mut direct_output: HashMap<usize, u32> = HashMap::new();

    // Validate the 4-distinct-weights-per-neuron precondition.
    for i in 0..templates.len() {
        let distinct = net.distinct_in_weights(NeuronId(i)).len();
        if distinct > 4 {
            return Err(CompileError::TooManyWeights {
                neuron: i,
                distinct,
            });
        }
    }

    // ---- Pass 1: output taps --------------------------------------------
    let mut relays = 0usize;
    for (port, &NeuronId(n)) in net.outputs().iter().enumerate() {
        let has_fanout = synapses
            .iter()
            .any(|s| s.pre == NodeRef::Neuron(NeuronId(n)));
        if !has_fanout && !direct_output.contains_key(&n) {
            direct_output.insert(n, port as u32);
        } else {
            // Tap synapses use delay 2, not 1: a tapped neuron by definition
            // has other fan-out, and a delay-2 tap leaves the splitter free
            // to start its chain in any core. Tapped ports therefore report
            // with a fixed 2-tick latency.
            let relay = templates.len();
            templates.push(relay_template());
            relays += 1;
            synapses.push(LogicalSynapse {
                pre: NodeRef::Neuron(NeuronId(n)),
                post: NeuronId(relay),
                weight: 1,
                delay: 2,
            });
            direct_output.insert(relay, port as u32);
        }
    }

    // ---- Pass 2: BFS ordering + greedy partitioning ----------------------
    let n_neurons = templates.len();
    let mut out_adj: Vec<Vec<usize>> = vec![Vec::new(); n_neurons];
    let mut in_synapses: Vec<Vec<usize>> = vec![Vec::new(); n_neurons];
    for (si, s) in synapses.iter().enumerate() {
        in_synapses[s.post.0].push(si);
        if let NodeRef::Neuron(NeuronId(p)) = s.pre {
            out_adj[p].push(s.post.0);
        }
    }
    let order = bfs_order(&synapses, &out_adj, n_neurons);

    let usable = options
        .core_neurons
        .saturating_sub(options.relay_reserve)
        .max(1);
    // Axon slack scales with the relay reserve: splitter chains and relay
    // target axons consume axon slots the raw synapse count cannot predict.
    let axon_slack = ((options.relay_reserve * options.core_axons) / options.core_neurons.max(1))
        .max(options.core_axons / 8)
        .min(options.core_axons / 2);
    let axon_budget = options.core_axons.saturating_sub(axon_slack).max(1);
    let mut cores: Vec<Vec<usize>> = Vec::new();
    let mut core_of = vec![usize::MAX; n_neurons];
    {
        let mut current: Vec<usize> = Vec::new();
        // Axon demand is counted per (source, delay, weight): input axons
        // are replicated per weight value (role) at emission, so the finer
        // key keeps the packing honest about the real axon consumption.
        let mut axon_keys: BTreeSet<(NodeKey, u8, i32)> = BTreeSet::new();
        for &n in &order {
            // Keys this neuron's fan-in would add.
            let mut added: BTreeSet<(NodeKey, u8, i32)> = BTreeSet::new();
            for &si in &in_synapses[n] {
                let s = &synapses[si];
                added.insert((NodeKey::from(s.pre), s.delay, s.weight));
            }
            let new_axons = added.difference(&axon_keys).count();
            let fits = current.len() < usable && axon_keys.len() + new_axons <= axon_budget;
            if !fits && !current.is_empty() {
                cores.push(std::mem::take(&mut current));
                axon_keys.clear();
                for &si in &in_synapses[n] {
                    let s = &synapses[si];
                    axon_keys.insert((NodeKey::from(s.pre), s.delay, s.weight));
                }
            } else {
                axon_keys.extend(added);
            }
            core_of[n] = cores.len();
            current.push(n);
        }
        if !current.is_empty() {
            cores.push(current);
        }
        if cores.is_empty() {
            cores.push(Vec::new());
        }
    }

    // ---- Pass 3: axon construction + splitter insertion -------------------
    let mut axons: Vec<Vec<AxonRecord>> = vec![Vec::new(); cores.len()];
    let mut neuron_dest: Vec<Option<(usize, usize, u8)>> = vec![None; n_neurons];
    let mut input_taps: Vec<Vec<(usize, usize, u8)>> = vec![Vec::new(); net.inputs()];

    // Group synapses by source.
    let mut by_source: BTreeMap<NodeKey, SourceGroups> = BTreeMap::new();
    for s in &synapses {
        let key = NodeKey::from(s.pre);
        let core = core_of[s.post.0];
        by_source
            .entry(key)
            .or_default()
            .entry((core, s.delay))
            .or_default()
            .push((s.post.0, s.weight));
    }

    let source_keys: Vec<NodeKey> = by_source.keys().copied().collect();
    for key in source_keys {
        let groups = by_source.get(&key).cloned().unwrap_or_default();
        match key {
            NodeKey::Input(port) => {
                // External inputs reach any number of axons via the I/O
                // periphery: one axon per (core, delay, weight) group — the
                // per-weight replication gives every input axon a single
                // role, which the type-assignment pass can always colour.
                for ((core, delay), posts) in groups {
                    let merged = merge_posts(&posts)?;
                    let mut by_weight: BTreeMap<i32, Vec<(usize, i32)>> = BTreeMap::new();
                    for (post, w) in merged {
                        by_weight.entry(w).or_default().push((post, w));
                    }
                    for posts in by_weight.into_values() {
                        let idx = axons[core].len();
                        axons[core].push(AxonRecord {
                            driver: Driver::Input(port),
                            delay,
                            posts,
                        });
                        input_taps[port].push((core, idx, delay));
                    }
                }
            }
            NodeKey::Neuron(n) => {
                if groups.len() == 1 {
                    let ((core, delay), posts) = groups.into_iter().next().expect("non-empty");
                    let posts = merge_posts(&posts)?;
                    let idx = axons[core].len();
                    axons[core].push(AxonRecord {
                        driver: Driver::Neuron(n),
                        delay,
                        posts,
                    });
                    neuron_dest[n] = Some((core, idx, delay));
                } else {
                    split_source(
                        n,
                        groups,
                        options,
                        &mut templates,
                        &mut core_of,
                        &mut cores,
                        &mut axons,
                        &mut neuron_dest,
                        &mut relays,
                    )?;
                }
            }
        }
    }

    // ---- Capacity checks --------------------------------------------------
    for (core, list) in axons.iter().enumerate() {
        if list.len() > options.core_axons {
            return Err(CompileError::AxonOverflow {
                core,
                needed: list.len(),
                budget: options.core_axons,
            });
        }
    }
    for (core, members) in cores.iter().enumerate() {
        if members.len() > options.core_neurons {
            return Err(CompileError::CoreOverflow { core });
        }
    }

    Ok(Mapped {
        templates,
        core_of,
        cores,
        axons,
        neuron_dest,
        direct_output,
        input_taps,
        relays,
    })
}

/// Merges parallel `(post, weight)` pairs additively (same source, same
/// delay, same target — a single crossbar bit must carry their sum).
fn merge_posts(raw: &[(usize, i32)]) -> Result<Posts, CompileError> {
    let mut merged: BTreeMap<usize, i64> = BTreeMap::new();
    for &(post, w) in raw {
        *merged.entry(post).or_insert(0) += w as i64;
    }
    merged
        .into_iter()
        .map(|(post, w)| {
            if i32::try_from(w).is_err() || Weight::new(w as i32).is_err() {
                Err(CompileError::MergedWeightOverflow {
                    neuron: post,
                    weight: w,
                })
            } else {
                Ok((post, w as i32))
            }
        })
        .collect()
}

/// Appends a fresh relay neuron to `core`.
fn add_relay(
    core: usize,
    options: &CompileOptions,
    templates: &mut Vec<NeuronConfig>,
    neuron_dest: &mut Vec<Option<(usize, usize, u8)>>,
    core_of: &mut Vec<usize>,
    #[allow(clippy::ptr_arg)] cores: &mut Vec<Vec<usize>>,
) -> Result<usize, CompileError> {
    if cores[core].len() >= options.core_neurons {
        return Err(CompileError::CoreOverflow { core });
    }
    let relay = templates.len();
    templates.push(relay_template());
    neuron_dest.push(None);
    core_of.push(core);
    cores[core].push(relay);
    Ok(relay)
}

/// Maps a multi-group source through a *relay spill chain*.
///
/// The source drives a chain axon (packet delay 1) in the first chain core;
/// the spike reaches the chain axon at depth `i` at offset `i + 1` ticks.
/// At each chain core the axon's crossbar row feeds (a) targets of a local
/// group whose delay equals the arrival offset, (b) relay neurons — one per
/// remaining group, each forwarding to the group's own core with delay
/// `d − arrival` — and (c) when capacity runs out, a forwarder relay that
/// extends the chain into another core. End-to-end logical delays are
/// preserved exactly; paths that cannot absorb the relay latency fail with
/// [`CompileError::DelayTooSmallForFanout`].
#[allow(clippy::too_many_arguments)]
fn split_source(
    n: usize,
    groups: SourceGroups,
    options: &CompileOptions,
    templates: &mut Vec<NeuronConfig>,
    core_of: &mut Vec<usize>,
    cores: &mut Vec<Vec<usize>>,
    axons: &mut Vec<Vec<AxonRecord>>,
    neuron_dest: &mut Vec<Option<(usize, usize, u8)>>,
    relays: &mut usize,
) -> Result<(), CompileError> {
    // Pending groups in ascending-delay (most urgent first) order.
    let mut pending: VecDeque<PendingGroup> = {
        let mut list = groups
            .into_iter()
            .map(|((core, delay), posts)| Ok((core, delay, merge_posts(&posts)?)))
            .collect::<Result<Vec<_>, CompileError>>()?;
        list.sort_by_key(|&(core, delay, _)| (delay, core));
        list.into()
    };

    // Delay-1 groups must all live in the first chain core.
    let d1_cores: BTreeSet<usize> = pending.iter().filter(|g| g.1 == 1).map(|g| g.0).collect();
    if d1_cores.len() > 1 {
        return Err(CompileError::DelayTooSmallForFanout { neuron: n });
    }
    // First chain core: forced by a delay-1 group, else a capacity-aware
    // pick (relays and the forwarder need neuron slots there).
    let mut current = match d1_cores.iter().next() {
        Some(&c) => c,
        None => pick_next_core(&pending, cores, axons, options),
    };

    let mut chain_driver = n;
    for depth in 0usize.. {
        let arrival = (depth + 1) as u8;
        let mut chain_posts: Vec<(usize, i32)> = Vec::new();

        // Direct local groups at the exact arrival offset; anything whose
        // delay has already been overtaken is unmappable.
        let mut rest: VecDeque<PendingGroup> = VecDeque::with_capacity(pending.len());
        while let Some(group) = pending.pop_front() {
            if group.0 == current && group.1 == arrival {
                chain_posts.extend(group.2);
            } else if group.1 <= arrival {
                return Err(CompileError::DelayTooSmallForFanout { neuron: n });
            } else {
                rest.push_back(group);
            }
        }
        pending = rest;

        // Local relays, urgent first, keeping one slot for a forwarder if
        // groups would remain afterwards.
        while let Some((gcore, gdelay, posts)) = pending.pop_front() {
            let slots_left = options.core_neurons.saturating_sub(cores[current].len());
            let reserve_forwarder = usize::from(!pending.is_empty());
            if slots_left <= reserve_forwarder {
                pending.push_front((gcore, gdelay, posts));
                break;
            }
            let relay = add_relay(current, options, templates, neuron_dest, core_of, cores)?;
            *relays += 1;
            chain_posts.push((relay, 1));
            let idx = axons[gcore].len();
            axons[gcore].push(AxonRecord {
                driver: Driver::Neuron(relay),
                delay: gdelay - arrival,
                posts,
            });
            neuron_dest[relay] = Some((gcore, idx, gdelay - arrival));
        }

        let forwarder = if pending.is_empty() {
            None
        } else {
            let f = add_relay(current, options, templates, neuron_dest, core_of, cores)?;
            *relays += 1;
            chain_posts.push((f, 1));
            Some(f)
        };

        let idx = axons[current].len();
        axons[current].push(AxonRecord {
            driver: Driver::Neuron(chain_driver),
            delay: 1,
            posts: chain_posts,
        });
        neuron_dest[chain_driver] = Some((current, idx, 1));

        match forwarder {
            None => break,
            Some(f) => {
                chain_driver = f;
                current = pick_next_core(&pending, cores, axons, options);
            }
        }
    }
    Ok(())
}

/// Chooses the next chain core. Urgent groups (delay = arrival + 1) must be
/// relayed immediately, so prefer a core with room for *all* pending
/// relays: first among the pending groups' own cores, then any core, then a
/// fresh core; failing that, the roomiest core (the forwarder chain absorbs
/// the remainder when delays allow).
fn pick_next_core(
    pending: &VecDeque<PendingGroup>,
    cores: &mut Vec<Vec<usize>>,
    axons: &mut Vec<Vec<AxonRecord>>,
    options: &CompileOptions,
) -> usize {
    let free = |cores: &[Vec<usize>], i: usize| options.core_neurons.saturating_sub(cores[i].len());
    let need = pending.len();
    for g in pending {
        if free(cores, g.0) >= need {
            return g.0;
        }
    }
    if let Some(i) = (0..cores.len()).find(|&i| free(cores, i) >= need) {
        return i;
    }
    if options.core_neurons >= need.max(2) {
        cores.push(Vec::new());
        axons.push(Vec::new());
        return cores.len() - 1;
    }
    // No core can take everything: pick the roomiest.
    (0..cores.len())
        .max_by_key(|&i| free(cores, i))
        .expect("at least one core exists")
}

/// Orderable mirror of `NodeRef` used as partitioning key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum NodeKey {
    Input(usize),
    Neuron(usize),
}

impl From<NodeRef> for NodeKey {
    fn from(node: NodeRef) -> NodeKey {
        match node {
            NodeRef::Input(p) => NodeKey::Input(p),
            NodeRef::Neuron(NeuronId(n)) => NodeKey::Neuron(n),
        }
    }
}

fn bfs_order(synapses: &[LogicalSynapse], out_adj: &[Vec<usize>], n: usize) -> Vec<usize> {
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    // Seed with input-driven neurons, in synapse order.
    for s in synapses {
        if matches!(s.pre, NodeRef::Input(_)) && !seen[s.post.0] {
            seen[s.post.0] = true;
            queue.push_back(s.post.0);
        }
    }
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &w in &out_adj[v] {
            if !seen[w] {
                seen[w] = true;
                queue.push_back(w);
            }
        }
    }
    // Unreached neurons (pure sources, isolated) appended in index order.
    order.extend(
        seen.iter()
            .enumerate()
            .filter_map(|(v, &s)| (!s).then_some(v)),
    );
    order
}

/// Greedy axon-type assignment per core, with input-axon replication.
///
/// When greedy colouring of a core fails on an *input-driven* axon, that
/// axon is split — first by weight value, then by post subsets — exactly
/// as the silicon toolchain replicates input axons so that one pixel can
/// play different roles (types) for different neurons. The I/O periphery
/// can address many axons per input port, so replication is free apart
/// from the axon budget; the split axons are appended to the port's tap
/// list. Neuron-driven axons cannot be replicated (a spike packet has one
/// destination), so an uncolourable neuron-driven axon is a hard
/// [`CompileError::WeightPaletteOverflow`].
pub(crate) fn assign_types(
    mapped: &mut Mapped,
    options: &CompileOptions,
) -> Result<Typed, CompileError> {
    // Structural changes (axon replication, relay splits) can touch cores
    // in any position, so colouring runs as a fixpoint: colour every core;
    // on a structural change, restart. Each change strictly increases the
    // axon count under a hard budget, so the loop terminates.
    'restart: loop {
        let mut axon_types: Vec<Vec<AxonType>> = Vec::with_capacity(mapped.axons.len());
        let mut weight_tables: Vec<[Weight; 4]> = vec![[Weight::ZERO; 4]; mapped.templates.len()];

        let mut core = 0;
        while core < mapped.axons.len() {
            // Conflict-driven priorities: an axon that failed colouring is
            // retried earlier in the next round, which removes greedy
            // ordering artifacts.
            let mut priority: HashMap<usize, u32> = HashMap::new();
            'retry: loop {
                let list = &mapped.axons[core];
                // Constraint map per type: physical neuron → required weight.
                let mut maps: [HashMap<usize, i32>; 4] = Default::default();
                // Previously failed axons first, then widest first.
                let mut idx: Vec<usize> = (0..list.len()).collect();
                idx.sort_by_key(|&i| {
                    (
                        u32::MAX - priority.get(&i).copied().unwrap_or(0),
                        usize::MAX - list[i].posts.len(),
                    )
                });
                let mut assigned = vec![AxonType::A0; list.len()];
                let mut failed: Option<usize> = None;
                for &i in &idx {
                    let axon = &list[i];
                    let mut placed = false;
                    for ty in AxonType::ALL {
                        let m = &maps[ty.index()];
                        let compatible = axon.posts.iter().all(|&(post, w)| {
                            m.get(&post).map(|&existing| existing == w).unwrap_or(true)
                        });
                        if compatible {
                            for &(post, w) in &axon.posts {
                                maps[ty.index()].insert(post, w);
                            }
                            assigned[i] = ty;
                            placed = true;
                            break;
                        }
                    }
                    if !placed {
                        failed = Some(i);
                        break;
                    }
                }

                match failed {
                    None => {
                        for ty in AxonType::ALL {
                            for (&post, &w) in &maps[ty.index()] {
                                weight_tables[post][ty.index()] =
                                    Weight::new(w).expect("weights validated earlier");
                            }
                        }
                        axon_types.push(assigned);
                        break 'retry;
                    }
                    Some(i) => {
                        // First lever: retry with this axon prioritised.
                        let bumps = priority.entry(i).or_insert(0);
                        if *bumps < 12 {
                            *bumps += 1;
                            continue 'retry;
                        }
                        // If the failing axon is itself unsplittable (a
                        // single weight role), the blockage comes from the
                        // mixed-role axons pinning its posts: split the
                        // widest such conflicting axon instead.
                        let i = if split_axon_posts(&mapped.axons[core][i].posts).len() >= 2 {
                            i
                        } else {
                            let failing_posts: std::collections::BTreeSet<usize> = mapped.axons
                                [core][i]
                                .posts
                                .iter()
                                .map(|&(p, _)| p)
                                .collect();
                            match (0..mapped.axons[core].len())
                                .filter(|&j| j != i)
                                .filter(|&j| {
                                    let a = &mapped.axons[core][j];
                                    a.posts.iter().any(|&(p, _)| failing_posts.contains(&p))
                                        && split_axon_posts(&a.posts).len() >= 2
                                })
                                .max_by_key(|&j| mapped.axons[core][j].posts.len())
                            {
                                Some(j) => j,
                                None => return Err(CompileError::WeightPaletteOverflow { core }),
                            }
                        };
                        match mapped.axons[core][i].driver {
                            // Second lever (input-driven): replicate the
                            // axon — the I/O periphery can address many
                            // axons per port.
                            Driver::Input(port) => {
                                let delay = mapped.axons[core][i].delay;
                                let posts = mapped.axons[core][i].posts.clone();
                                let parts = split_axon_posts(&posts);
                                if parts.len() < 2 {
                                    if std::env::var("BRAINSIM_DEBUG_TYPING").is_ok() {
                                        eprintln!("palette overflow: core {core} input axon {i} posts {posts:?}");
                                        for (j, ax) in mapped.axons[core].iter().enumerate() {
                                            eprintln!(
                                                "  axon {j}: {:?} d{} posts {:?}",
                                                ax.driver, ax.delay, ax.posts
                                            );
                                        }
                                    }
                                    return Err(CompileError::WeightPaletteOverflow { core });
                                }
                                if mapped.axons[core].len() + parts.len() - 1 > options.core_axons {
                                    return Err(CompileError::AxonOverflow {
                                        core,
                                        needed: mapped.axons[core].len() + parts.len() - 1,
                                        budget: options.core_axons,
                                    });
                                }
                                let mut parts = parts.into_iter();
                                mapped.axons[core][i].posts =
                                    parts.next().expect("non-empty split");
                                for part in parts {
                                    let idx = mapped.axons[core].len();
                                    mapped.axons[core].push(AxonRecord {
                                        driver: Driver::Input(port),
                                        delay,
                                        posts: part,
                                    });
                                    mapped.input_taps[port].push((core, idx, delay));
                                }
                            }
                            // Third lever (neuron-driven): replicate through
                            // relays — the EEDN deployment pattern, where
                            // one source appears in a core as several
                            // role-specific axons.
                            Driver::Neuron(_) => {
                                relay_split_axon(core, i, mapped, options)?;
                            }
                        }
                        continue 'restart;
                    }
                }
            }
            core += 1;
        }

        return Ok(Typed {
            axon_types,
            weight_tables,
        });
    }
}

/// Replicates a neuron-driven axon through relays: the axon at
/// `(core, index)` becomes a hub (packet delay 1) whose crossbar row feeds
/// one relay per part; each relay drives a fresh axon carrying the
/// residual delay and a uniform-role subset of the original posts.
fn relay_split_axon(
    core: usize,
    index: usize,
    mapped: &mut Mapped,
    options: &CompileOptions,
) -> Result<(), CompileError> {
    let delay = mapped.axons[core][index].delay;
    let posts = mapped.axons[core][index].posts.clone();
    let parts = split_axon_posts(&posts);
    if parts.len() < 2 {
        if std::env::var("BRAINSIM_DEBUG_TYPING").is_ok() {
            eprintln!("palette overflow: core {core} neuron axon {index} posts {posts:?}");
            for (j, ax) in mapped.axons[core].iter().enumerate() {
                eprintln!(
                    "  axon {j}: {:?} d{} posts {:?}",
                    ax.driver, ax.delay, ax.posts
                );
            }
        }
        return Err(CompileError::WeightPaletteOverflow { core });
    }
    // Find the neuron whose destination points at this axon (the true
    // driver; the record's driver field is informational for chain axons).
    let owner = mapped
        .neuron_dest
        .iter()
        .position(|d| matches!(d, Some((c, a, _)) if *c == core && *a == index))
        .ok_or(CompileError::WeightPaletteOverflow { core })?;
    if delay < 2 {
        // The extra relay hop cannot be absorbed.
        return Err(CompileError::DelayTooSmallForFanout { neuron: owner });
    }
    // The role relays (and the hub axon feeding them) can live in any core
    // with room; the role axons themselves stay in the conflicted core.
    let need = parts.len();
    let free = |cores: &[Vec<usize>], i: usize| options.core_neurons.saturating_sub(cores[i].len());
    let host = if free(&mapped.cores, core) >= need {
        core
    } else if let Some(i) = (0..mapped.cores.len()).find(|&i| free(&mapped.cores, i) >= need) {
        i
    } else if options.core_neurons >= need {
        mapped.cores.push(Vec::new());
        mapped.axons.push(Vec::new());
        mapped.cores.len() - 1
    } else {
        return Err(CompileError::CoreOverflow { core });
    };
    if mapped.axons[core].len() + need - 1 > options.core_axons {
        return Err(CompileError::AxonOverflow {
            core,
            needed: mapped.axons[core].len() + need - 1,
            budget: options.core_axons,
        });
    }
    if host != core && mapped.axons[host].len() + 1 > options.core_axons {
        return Err(CompileError::AxonOverflow {
            core: host,
            needed: mapped.axons[host].len() + 1,
            budget: options.core_axons,
        });
    }

    let mut hub_posts = Vec::with_capacity(need);
    let mut parts = parts.into_iter();
    // The original axon record is repurposed as the first role axon.
    let first = parts.next().expect("at least two parts");
    let r0 = add_relay(
        host,
        options,
        &mut mapped.templates,
        &mut mapped.neuron_dest,
        &mut mapped.core_of,
        &mut mapped.cores,
    )?;
    mapped.relays += 1;
    hub_posts.push((r0, 1));
    mapped.axons[core][index] = AxonRecord {
        driver: Driver::Neuron(r0),
        delay: delay - 1,
        posts: first,
    };
    mapped.neuron_dest[r0] = Some((core, index, delay - 1));
    for part in parts {
        let relay = add_relay(
            host,
            options,
            &mut mapped.templates,
            &mut mapped.neuron_dest,
            &mut mapped.core_of,
            &mut mapped.cores,
        )?;
        mapped.relays += 1;
        hub_posts.push((relay, 1));
        let idx = mapped.axons[core].len();
        mapped.axons[core].push(AxonRecord {
            driver: Driver::Neuron(relay),
            delay: delay - 1,
            posts: part,
        });
        mapped.neuron_dest[relay] = Some((core, idx, delay - 1));
    }
    let hub_idx = mapped.axons[host].len();
    mapped.axons[host].push(AxonRecord {
        driver: Driver::Neuron(owner),
        delay: 1,
        posts: hub_posts,
    });
    mapped.neuron_dest[owner] = Some((host, hub_idx, 1));
    Ok(())
}

/// Splits an axon's posts for replication: by weight value when several
/// weights are present, otherwise into two halves by post.
fn split_axon_posts(posts: &[(usize, i32)]) -> Vec<Posts> {
    let mut by_weight: BTreeMap<i32, Vec<(usize, i32)>> = BTreeMap::new();
    for &(post, w) in posts {
        by_weight.entry(w).or_default().push((post, w));
    }
    if by_weight.len() > 1 {
        return by_weight.into_values().collect();
    }
    if posts.len() < 2 {
        return vec![posts.to_vec()];
    }
    let mid = posts.len() / 2;
    vec![posts[..mid].to_vec(), posts[mid..].to_vec()]
}
