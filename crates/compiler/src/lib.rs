//! # brainsim-compiler
//!
//! The mapping toolchain: from a hardware-agnostic
//! [`brainsim_corelet::LogicalNetwork`] to a configured, runnable
//! [`brainsim_chip::Chip`].
//!
//! ## Pipeline
//!
//! 1. **Output taps** — a physical neuron has exactly one spike
//!    destination, so an output-port neuron that also drives internal
//!    synapses gets a relay tap (one extra tick of output latency).
//! 2. **Partitioning** — BFS-ordered greedy packing of neurons into cores
//!    under the neuron-count and axon-count budgets, with slack reserved
//!    for splitter relays.
//! 3. **Splitter insertion** — a spike packet addresses a single axon, so a
//!    source whose targets span several `(core, delay)` groups drives a
//!    hub axon (packet delay 1) whose crossbar row feeds relay neurons, one
//!    per remaining group; each relay forwards with delay `d − 1`, keeping
//!    every logical path's end-to-end delay exact. Relayed paths therefore
//!    need `d ≥ 2` ([`CompileError::DelayTooSmallForFanout`]).
//! 4. **Axon-type assignment** — each core offers four axon types; per
//!    neuron, the weight applied is its table entry for the axon's type.
//!    Greedy constraint-map colouring assigns types; an unsatisfiable core
//!    reports [`CompileError::WeightPaletteOverflow`].
//! 5. **Placement** — greedy seeding by traffic, then simulated annealing
//!    minimising Σ(traffic × Manhattan distance); the improvement is the
//!    T3 experiment.
//! 6. **Emission** — a [`CompiledNetwork`]: the chip plus the input/output
//!    port maps and a [`CompileReport`].
//!
//! The [`interp`] module provides the direct logical-network interpreter
//! used as the functional oracle for compilation correctness.
//!
//! ## Example
//!
//! ```
//! use brainsim_compiler::{compile, CompileOptions};
//! use brainsim_corelet::{Corelet, NodeRef};
//! use brainsim_neuron::NeuronConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut c = Corelet::new("relay", 1);
//! let n = c.add_neuron(NeuronConfig::builder().threshold(1).build()?);
//! c.connect(NodeRef::Input(0), n, 1, 1)?;
//! c.mark_output(n)?;
//!
//! let mut compiled = compile(c.network(), &CompileOptions::default())?;
//! compiled.inject(0, 0)?;
//! let raster = compiled.run(3, |_| Vec::new());
//! assert_eq!(raster[1], vec![true]); // input at t=0, delay 1 → output at t=1
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod emit;
pub mod interp;
mod passes;
mod place;

use std::fmt;

use brainsim_chip::{CoreScheduling, TickSemantics};
use brainsim_corelet::LogicalNetwork;
use serde::{Deserialize, Serialize};

pub use emit::{CompileReport, CompiledNetwork, IoError};

/// Tunable knobs of the mapping pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompileOptions {
    /// Axons per physical core.
    pub core_axons: usize,
    /// Neurons per physical core.
    pub core_neurons: usize,
    /// Neuron slots per core reserved for splitter relays during packing.
    pub relay_reserve: usize,
    /// Explicit grid dimensions; `None` picks the smallest square.
    pub grid: Option<(usize, usize)>,
    /// Simulated-annealing iterations for placement (0 = greedy only).
    pub anneal_iters: u32,
    /// Seed for the placement annealer and per-core LFSRs.
    pub seed: u32,
    /// Tick semantics of the emitted chip.
    pub semantics: TickSemantics,
    /// Worker threads of the emitted chip.
    pub threads: usize,
    /// Core-evaluation scheduling mode of the emitted chip (bit-identical
    /// either way; a differential knob for the equivalence suites).
    pub scheduling: CoreScheduling,
    /// Grid cells that are known-defective and must not host a core —
    /// the yield/defect-tolerance knob of the placement stage. The list is
    /// normalised (sorted, deduplicated) at compile entry; a cell outside
    /// the placement grid is a configuration error
    /// ([`CompileError::FaultyCellOffGrid`]).
    pub faulty_cells: Vec<(usize, usize)>,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            core_axons: 256,
            core_neurons: 256,
            relay_reserve: 32,
            grid: None,
            anneal_iters: 10_000,
            seed: 0xC0_FFEE,
            semantics: TickSemantics::Deterministic,
            threads: 1,
            scheduling: CoreScheduling::default(),
            faulty_cells: Vec::new(),
        }
    }
}

/// Errors from the mapping pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A neuron has more than four distinct incoming weights; no axon-type
    /// assignment can realise it.
    TooManyWeights {
        /// Logical neuron index.
        neuron: usize,
        /// Number of distinct weights found.
        distinct: usize,
    },
    /// A multi-core (or multi-delay) fan-out path has logical delay 1;
    /// the splitter relay needs at least 2 ticks end to end.
    DelayTooSmallForFanout {
        /// Logical source neuron index.
        neuron: usize,
    },
    /// Splitter relays overflowed the reserved slack of a core.
    CoreOverflow {
        /// Core index that overflowed.
        core: usize,
    },
    /// A core needs more axons than the hardware budget.
    AxonOverflow {
        /// Core index.
        core: usize,
        /// Axons required.
        needed: usize,
        /// Axon budget.
        budget: usize,
    },
    /// No 4-type assignment satisfies a core's weight constraints.
    WeightPaletteOverflow {
        /// Core index.
        core: usize,
    },
    /// Parallel same-delay synapses between one pair merged to a weight
    /// outside the representable range.
    MergedWeightOverflow {
        /// Physical target neuron.
        neuron: usize,
        /// Merged weight value.
        weight: i64,
    },
    /// The network does not fit the requested grid.
    GridTooSmall {
        /// Cores required.
        cores: usize,
        /// Grid capacity.
        capacity: usize,
    },
    /// A declared defective cell lies outside the placement grid — a
    /// configuration error, not a tolerable defect.
    FaultyCellOffGrid {
        /// The offending cell.
        cell: (usize, usize),
        /// The placement grid (width, height).
        grid: (usize, usize),
    },
    /// The grid assembly failed internal validation (a bug if it happens).
    Emit(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::TooManyWeights { neuron, distinct } => write!(
                f,
                "neuron {neuron} has {distinct} distinct incoming weights (max 4)"
            ),
            CompileError::DelayTooSmallForFanout { neuron } => write!(
                f,
                "neuron {neuron} fans out across cores with delay 1; split paths need delay >= 2"
            ),
            CompileError::CoreOverflow { core } => {
                write!(f, "splitter relays overflowed core {core}")
            }
            CompileError::AxonOverflow {
                core,
                needed,
                budget,
            } => {
                write!(f, "core {core} needs {needed} axons, budget {budget}")
            }
            CompileError::WeightPaletteOverflow { core } => {
                write!(f, "core {core} cannot satisfy weights with 4 axon types")
            }
            CompileError::MergedWeightOverflow { neuron, weight } => write!(
                f,
                "merged parallel synapses into neuron {neuron} give weight {weight} out of range"
            ),
            CompileError::GridTooSmall { cores, capacity } => {
                write!(f, "{cores} cores do not fit a grid of {capacity}")
            }
            CompileError::FaultyCellOffGrid { cell, grid } => write!(
                f,
                "faulty cell ({}, {}) lies outside the {}x{} placement grid",
                cell.0, cell.1, grid.0, grid.1
            ),
            CompileError::Emit(msg) => write!(f, "emission failed: {msg}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// The placement image a [`CompiledNetwork`] retains from compilation.
///
/// This is what the runtime recovery planner needs to re-enter placement
/// without recompiling from scratch: the grid the chip was built for, the
/// physical cell of every mapped core, and the defective-cell set the
/// original placement avoided.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkMap {
    /// Grid dimensions (width, height).
    pub grid: (usize, usize),
    /// Physical cell of each mapped core, indexed by mapped-core id.
    pub positions: Vec<(usize, usize)>,
    /// The normalised (sorted, deduplicated) defective-cell set the
    /// placement avoided.
    pub faulty_cells: Vec<(usize, usize)>,
}

/// One core relocation in a [`RepairedNetwork`]'s migration set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreMove {
    /// Mapped-core id.
    pub core: usize,
    /// Cell the core occupied before the repair.
    pub from: (usize, usize),
    /// Cell the core occupies after the repair.
    pub to: (usize, usize),
}

/// The result of [`repair`]: a freshly emitted network plus the minimal
/// migration set that turns the old placement into the new one.
#[derive(Debug)]
pub struct RepairedNetwork {
    /// The re-emitted network. Same grid, same logical mapping; only the
    /// cores listed in `moves` sit on different cells.
    pub compiled: CompiledNetwork,
    /// The cores that moved, in descending traffic-weight order (the order
    /// they were re-placed in).
    pub moves: Vec<CoreMove>,
}

/// Compiles a logical network into a runnable chip.
///
/// # Errors
///
/// See [`CompileError`] for every way a network can fail to map.
pub fn compile(
    net: &LogicalNetwork,
    options: &CompileOptions,
) -> Result<CompiledNetwork, CompileError> {
    let mut opts = options.clone();
    normalise_faulty_cells(&mut opts.faulty_cells);
    let (mapped, typed, opts) = map_and_type(net, &opts)?;
    let grid = place::grid_for(mapped.cores.len(), &opts);
    check_faulty_cells_on_grid(&opts.faulty_cells, grid)?;
    if grid.0 * grid.1 - opts.faulty_cells.len() < mapped.cores.len() {
        return Err(CompileError::GridTooSmall {
            cores: mapped.cores.len(),
            capacity: grid.0 * grid.1 - opts.faulty_cells.len(),
        });
    }
    let placement = place::place(&mapped, &opts);
    emit::emit(net, mapped, typed, placement, &opts)
}

/// Re-places a compiled network around newly condemned cells, moving as few
/// cores as possible.
///
/// `map` is the placement image retained by the original compilation
/// ([`CompiledNetwork::network_map`]); `condemned` lists the cells found
/// defective at runtime. Cores on healthy cells stay exactly where they
/// are; cores on condemned cells are re-seated (heaviest traffic first) on
/// the free healthy cell that minimises their traffic-weighted Manhattan
/// cost — the same score the original greedy placement uses. The grid is
/// never resized: the repaired chip must accept the old chip's checkpoint.
///
/// The returned [`RepairedNetwork`] carries the fresh [`CompiledNetwork`]
/// (whose retained map now includes the condemned cells) and the
/// old→new diff as a minimal migration set.
///
/// # Errors
///
/// - [`CompileError::FaultyCellOffGrid`] if a condemned cell lies outside
///   the grid.
/// - [`CompileError::GridTooSmall`] if no healthy spare cell is left for a
///   displaced core.
/// - Any mapping error [`compile`] can produce (the logical pipeline is
///   re-run; with the same network and options it reproduces the original
///   mapping).
pub fn repair(
    net: &LogicalNetwork,
    options: &CompileOptions,
    map: &NetworkMap,
    condemned: &[(usize, usize)],
) -> Result<RepairedNetwork, CompileError> {
    let mut opts = options.clone();
    opts.grid = Some(map.grid);
    opts.faulty_cells = map
        .faulty_cells
        .iter()
        .chain(condemned.iter())
        .copied()
        .collect();
    normalise_faulty_cells(&mut opts.faulty_cells);
    check_faulty_cells_on_grid(&opts.faulty_cells, map.grid)?;

    let (mapped, typed, opts) = map_and_type(net, &opts)?;
    if mapped.cores.len() != map.positions.len() {
        return Err(CompileError::Emit(format!(
            "retained map covers {} cores but the network maps to {}",
            map.positions.len(),
            mapped.cores.len()
        )));
    }
    let placement = place::repair(&mapped, map.grid, &map.positions, &opts.faulty_cells).ok_or(
        CompileError::GridTooSmall {
            cores: mapped.cores.len(),
            capacity: map.grid.0 * map.grid.1 - opts.faulty_cells.len(),
        },
    )?;
    let moves = map
        .positions
        .iter()
        .zip(placement.positions.iter())
        .enumerate()
        .filter(|(_, (old, new))| old != new)
        .map(|(core, (&from, &to))| CoreMove { core, from, to })
        .collect();
    let compiled = emit::emit(net, mapped, typed, placement, &opts)?;
    Ok(RepairedNetwork { compiled, moves })
}

/// Runs the logical pipeline (partitioning, splitters, axon typing) with
/// iterative legalisation: if splitter relays overflow the packing slack,
/// repack with a larger reserve (fewer logical neurons per core leaves more
/// room for relays). The reserve is capped at half the core, after which
/// the overflow is a genuine infeasibility. Returns the options actually
/// used so placement and emission see the escalated reserve.
fn map_and_type(
    net: &LogicalNetwork,
    options: &CompileOptions,
) -> Result<(passes::Mapped, passes::Typed, CompileOptions), CompileError> {
    let mut opts = options.clone();
    loop {
        let attempt = passes::map(net, &opts).and_then(|mut mapped| {
            let typed = passes::assign_types(&mut mapped, &opts)?;
            Ok((mapped, typed))
        });
        match attempt {
            Err(CompileError::CoreOverflow { .. })
            | Err(CompileError::AxonOverflow { .. })
            | Err(CompileError::DelayTooSmallForFanout { .. })
                if opts.relay_reserve < opts.core_neurons / 2 =>
            {
                opts.relay_reserve = (opts.relay_reserve.max(1) * 2).min(opts.core_neurons / 2);
            }
            Err(other) => return Err(other),
            Ok((mapped, typed)) => return Ok((mapped, typed, opts)),
        }
    }
}

fn normalise_faulty_cells(cells: &mut Vec<(usize, usize)>) {
    cells.sort_unstable();
    cells.dedup();
}

fn check_faulty_cells_on_grid(
    cells: &[(usize, usize)],
    grid: (usize, usize),
) -> Result<(), CompileError> {
    match cells.iter().find(|&&(x, y)| x >= grid.0 || y >= grid.1) {
        Some(&cell) => Err(CompileError::FaultyCellOffGrid { cell, grid }),
        None => Ok(()),
    }
}
