//! # brainsim-compiler
//!
//! The mapping toolchain: from a hardware-agnostic
//! [`brainsim_corelet::LogicalNetwork`] to a configured, runnable
//! [`brainsim_chip::Chip`].
//!
//! ## Pipeline
//!
//! 1. **Output taps** — a physical neuron has exactly one spike
//!    destination, so an output-port neuron that also drives internal
//!    synapses gets a relay tap (one extra tick of output latency).
//! 2. **Partitioning** — BFS-ordered greedy packing of neurons into cores
//!    under the neuron-count and axon-count budgets, with slack reserved
//!    for splitter relays.
//! 3. **Splitter insertion** — a spike packet addresses a single axon, so a
//!    source whose targets span several `(core, delay)` groups drives a
//!    hub axon (packet delay 1) whose crossbar row feeds relay neurons, one
//!    per remaining group; each relay forwards with delay `d − 1`, keeping
//!    every logical path's end-to-end delay exact. Relayed paths therefore
//!    need `d ≥ 2` ([`CompileError::DelayTooSmallForFanout`]).
//! 4. **Axon-type assignment** — each core offers four axon types; per
//!    neuron, the weight applied is its table entry for the axon's type.
//!    Greedy constraint-map colouring assigns types; an unsatisfiable core
//!    reports [`CompileError::WeightPaletteOverflow`].
//! 5. **Placement** — greedy seeding by traffic, then simulated annealing
//!    minimising Σ(traffic × Manhattan distance); the improvement is the
//!    T3 experiment.
//! 6. **Emission** — a [`CompiledNetwork`]: the chip plus the input/output
//!    port maps and a [`CompileReport`].
//!
//! The [`interp`] module provides the direct logical-network interpreter
//! used as the functional oracle for compilation correctness.
//!
//! ## Example
//!
//! ```
//! use brainsim_compiler::{compile, CompileOptions};
//! use brainsim_corelet::{Corelet, NodeRef};
//! use brainsim_neuron::NeuronConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut c = Corelet::new("relay", 1);
//! let n = c.add_neuron(NeuronConfig::builder().threshold(1).build()?);
//! c.connect(NodeRef::Input(0), n, 1, 1)?;
//! c.mark_output(n)?;
//!
//! let mut compiled = compile(c.network(), &CompileOptions::default())?;
//! compiled.inject(0, 0)?;
//! let raster = compiled.run(3, |_| Vec::new());
//! assert_eq!(raster[1], vec![true]); // input at t=0, delay 1 → output at t=1
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod emit;
pub mod interp;
mod passes;
mod place;

use std::fmt;

use brainsim_chip::TickSemantics;
use brainsim_corelet::LogicalNetwork;
use serde::{Deserialize, Serialize};

pub use emit::{CompileReport, CompiledNetwork, IoError};

/// Tunable knobs of the mapping pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompileOptions {
    /// Axons per physical core.
    pub core_axons: usize,
    /// Neurons per physical core.
    pub core_neurons: usize,
    /// Neuron slots per core reserved for splitter relays during packing.
    pub relay_reserve: usize,
    /// Explicit grid dimensions; `None` picks the smallest square.
    pub grid: Option<(usize, usize)>,
    /// Simulated-annealing iterations for placement (0 = greedy only).
    pub anneal_iters: u32,
    /// Seed for the placement annealer and per-core LFSRs.
    pub seed: u32,
    /// Tick semantics of the emitted chip.
    pub semantics: TickSemantics,
    /// Worker threads of the emitted chip.
    pub threads: usize,
    /// Grid cells that are known-defective and must not host a core —
    /// the yield/defect-tolerance knob of the placement stage.
    pub faulty_cells: Vec<(usize, usize)>,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            core_axons: 256,
            core_neurons: 256,
            relay_reserve: 32,
            grid: None,
            anneal_iters: 10_000,
            seed: 0xC0_FFEE,
            semantics: TickSemantics::Deterministic,
            threads: 1,
            faulty_cells: Vec::new(),
        }
    }
}

/// Errors from the mapping pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// A neuron has more than four distinct incoming weights; no axon-type
    /// assignment can realise it.
    TooManyWeights {
        /// Logical neuron index.
        neuron: usize,
        /// Number of distinct weights found.
        distinct: usize,
    },
    /// A multi-core (or multi-delay) fan-out path has logical delay 1;
    /// the splitter relay needs at least 2 ticks end to end.
    DelayTooSmallForFanout {
        /// Logical source neuron index.
        neuron: usize,
    },
    /// Splitter relays overflowed the reserved slack of a core.
    CoreOverflow {
        /// Core index that overflowed.
        core: usize,
    },
    /// A core needs more axons than the hardware budget.
    AxonOverflow {
        /// Core index.
        core: usize,
        /// Axons required.
        needed: usize,
        /// Axon budget.
        budget: usize,
    },
    /// No 4-type assignment satisfies a core's weight constraints.
    WeightPaletteOverflow {
        /// Core index.
        core: usize,
    },
    /// Parallel same-delay synapses between one pair merged to a weight
    /// outside the representable range.
    MergedWeightOverflow {
        /// Physical target neuron.
        neuron: usize,
        /// Merged weight value.
        weight: i64,
    },
    /// The network does not fit the requested grid.
    GridTooSmall {
        /// Cores required.
        cores: usize,
        /// Grid capacity.
        capacity: usize,
    },
    /// The grid assembly failed internal validation (a bug if it happens).
    Emit(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::TooManyWeights { neuron, distinct } => write!(
                f,
                "neuron {neuron} has {distinct} distinct incoming weights (max 4)"
            ),
            CompileError::DelayTooSmallForFanout { neuron } => write!(
                f,
                "neuron {neuron} fans out across cores with delay 1; split paths need delay >= 2"
            ),
            CompileError::CoreOverflow { core } => {
                write!(f, "splitter relays overflowed core {core}")
            }
            CompileError::AxonOverflow {
                core,
                needed,
                budget,
            } => {
                write!(f, "core {core} needs {needed} axons, budget {budget}")
            }
            CompileError::WeightPaletteOverflow { core } => {
                write!(f, "core {core} cannot satisfy weights with 4 axon types")
            }
            CompileError::MergedWeightOverflow { neuron, weight } => write!(
                f,
                "merged parallel synapses into neuron {neuron} give weight {weight} out of range"
            ),
            CompileError::GridTooSmall { cores, capacity } => {
                write!(f, "{cores} cores do not fit a grid of {capacity}")
            }
            CompileError::Emit(msg) => write!(f, "emission failed: {msg}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles a logical network into a runnable chip.
///
/// # Errors
///
/// See [`CompileError`] for every way a network can fail to map.
pub fn compile(
    net: &LogicalNetwork,
    options: &CompileOptions,
) -> Result<CompiledNetwork, CompileError> {
    // Iterative legalisation: if splitter relays overflow the packing
    // slack, repack with a larger reserve (fewer logical neurons per core
    // leaves more room for relays). The reserve is capped at half the core,
    // after which the overflow is a genuine infeasibility.
    let mut opts = options.clone();
    loop {
        match compile_once(net, &opts) {
            Err(CompileError::CoreOverflow { .. })
            | Err(CompileError::AxonOverflow { .. })
            | Err(CompileError::DelayTooSmallForFanout { .. })
                if opts.relay_reserve < opts.core_neurons / 2 =>
            {
                opts.relay_reserve = (opts.relay_reserve.max(1) * 2).min(opts.core_neurons / 2);
            }
            other => return other,
        }
    }
}

fn compile_once(
    net: &LogicalNetwork,
    options: &CompileOptions,
) -> Result<CompiledNetwork, CompileError> {
    let mut mapped = passes::map(net, options)?;
    let typed = passes::assign_types(&mut mapped, options)?;
    let grid = place::grid_for(mapped.cores.len(), options);
    let faulty_in_grid = options
        .faulty_cells
        .iter()
        .filter(|&&(x, y)| x < grid.0 && y < grid.1)
        .count();
    if grid.0 * grid.1 - faulty_in_grid < mapped.cores.len() {
        return Err(CompileError::GridTooSmall {
            cores: mapped.cores.len(),
            capacity: grid.0 * grid.1 - faulty_in_grid,
        });
    }
    let placement = place::place(&mapped, options);
    emit::emit(net, mapped, typed, placement, options)
}
