//! Back-end: chip emission and the compiled-network runtime.

use std::fmt;

use brainsim_chip::{Chip, ChipBuilder, ChipConfig, InjectError, TickSummary};
use brainsim_core::{AxonTarget, CoreOffset, Destination};
use brainsim_corelet::LogicalNetwork;
use brainsim_faults::{FaultPlan, FaultStats};
use serde::{Deserialize, Serialize};

use crate::passes::{Mapped, Typed};
use crate::place::Placement;
use crate::{CompileError, CompileOptions, NetworkMap};

/// What the mapping pipeline produced (the T3 experiment reads this).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompileReport {
    /// Cores used.
    pub cores: usize,
    /// Grid dimensions.
    pub grid: (usize, usize),
    /// Physical neurons (logical + relays).
    pub physical_neurons: usize,
    /// Relay neurons inserted (splitters + output taps).
    pub relays: usize,
    /// Total axons used across cores.
    pub axons_used: usize,
    /// Placement cost (Σ traffic × hops) after greedy seeding.
    pub greedy_cost: u64,
    /// Placement cost after annealing.
    pub annealed_cost: u64,
    /// Placement cost of a seeded random permutation (oblivious baseline).
    pub random_cost: u64,
    /// Total inter-core traffic weight.
    pub total_traffic: u64,
}

impl CompileReport {
    /// Mean hops per unit of traffic after greedy placement.
    pub fn mean_hops_greedy(&self) -> f64 {
        if self.total_traffic == 0 {
            0.0
        } else {
            self.greedy_cost as f64 / self.total_traffic as f64
        }
    }

    /// Mean hops per unit of traffic after annealing.
    pub fn mean_hops_annealed(&self) -> f64 {
        if self.total_traffic == 0 {
            0.0
        } else {
            self.annealed_cost as f64 / self.total_traffic as f64
        }
    }
}

/// I/O errors of the compiled-network runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoError {
    /// The input port does not exist.
    NoSuchInputPort(usize),
    /// The chip rejected the injection.
    Chip(InjectError),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::NoSuchInputPort(p) => write!(f, "input port {p} does not exist"),
            IoError::Chip(e) => write!(f, "chip rejected injection: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<InjectError> for IoError {
    fn from(e: InjectError) -> Self {
        IoError::Chip(e)
    }
}

/// A logical network mapped onto a chip, with its I/O port tables.
#[derive(Debug, Clone)]
pub struct CompiledNetwork {
    chip: Chip,
    /// Input port → `(x, y, axon, delay)` taps.
    input_taps: Vec<Vec<(usize, usize, usize, u8)>>,
    output_ports: usize,
    report: CompileReport,
    map: NetworkMap,
}

impl CompiledNetwork {
    /// The underlying chip (read-only).
    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    /// The underlying chip (mutable, e.g. for energy-census access).
    pub fn chip_mut(&mut self) -> &mut Chip {
        &mut self.chip
    }

    /// The placement image retained from compilation — what the runtime
    /// recovery planner hands back to [`crate::repair`] to re-place the
    /// network around cells condemned after deployment.
    pub fn network_map(&self) -> &NetworkMap {
        &self.map
    }

    /// Swaps in a replacement chip (the hot-migration engine's final step)
    /// and returns the one it replaces. The replacement must have the same
    /// grid dimensions — the retained I/O tap tables address physical
    /// cells.
    ///
    /// # Errors
    ///
    /// [`CompileError::Emit`] when the dimensions differ; the network is
    /// left unchanged and the rejected chip is dropped with the error.
    pub fn replace_chip(&mut self, chip: Chip) -> Result<Chip, CompileError> {
        let (w, h) = (self.chip.config().width, self.chip.config().height);
        if chip.config().width != w || chip.config().height != h {
            return Err(CompileError::Emit(format!(
                "replacement chip is {}x{}, expected {w}x{h}",
                chip.config().width,
                chip.config().height
            )));
        }
        Ok(std::mem::replace(&mut self.chip, chip))
    }

    /// The mapping report.
    pub fn report(&self) -> &CompileReport {
        &self.report
    }

    /// Number of input ports.
    pub fn inputs(&self) -> usize {
        self.input_taps.len()
    }

    /// Number of output ports.
    pub fn outputs(&self) -> usize {
        self.output_ports
    }

    /// Presents an input spike on `port` at tick `at_tick`; it reaches each
    /// of the port's axon taps after the corresponding synaptic delay.
    ///
    /// # Errors
    ///
    /// See [`IoError`].
    pub fn inject(&mut self, port: usize, at_tick: u64) -> Result<(), IoError> {
        let taps = self
            .input_taps
            .get(port)
            .ok_or(IoError::NoSuchInputPort(port))?
            .clone();
        for (x, y, axon, delay) in taps {
            self.chip.inject(x, y, axon, at_tick + delay as u64)?;
        }
        Ok(())
    }

    /// Advances one tick, returning which output ports fired.
    pub fn tick(&mut self) -> Vec<bool> {
        let summary: TickSummary = self.chip.tick();
        let mut fired = vec![false; self.output_ports];
        for port in summary.outputs {
            if let Some(slot) = fired.get_mut(port as usize) {
                *slot = true;
            }
        }
        fired
    }

    /// Resets all dynamic chip state (potentials, schedulers, tick counter,
    /// statistics), keeping the mapping. Use between independent trials.
    pub fn reset(&mut self) {
        self.chip.reset();
    }

    /// Applies a deterministic fault plan to the underlying chip (yield /
    /// degradation studies). Apply at most once per plan — structural
    /// faults burn in immediately. Arming at a tick boundary mid-run is
    /// deterministic; see [`Chip::set_fault_plan`].
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        self.chip.set_fault_plan(plan);
    }

    /// Aggregate fault statistics across the chip and all cores.
    pub fn fault_stats(&self) -> FaultStats {
        self.chip.fault_stats()
    }

    /// Runs `ticks` ticks; `stimulus(t)` lists the input ports spiking at
    /// tick `t`. Returns the output raster, one `Vec<bool>` per tick.
    ///
    /// # Panics
    ///
    /// Panics if the stimulus names a non-existent port.
    pub fn run<F>(&mut self, ticks: u64, mut stimulus: F) -> Vec<Vec<bool>>
    where
        F: FnMut(u64) -> Vec<usize>,
    {
        let mut raster = Vec::with_capacity(ticks as usize);
        for _ in 0..ticks {
            let t = self.chip.now();
            for port in stimulus(t) {
                self.inject(port, t).expect("stimulus named a bad port");
            }
            raster.push(self.tick());
        }
        raster
    }
}

pub(crate) fn emit(
    net: &LogicalNetwork,
    mapped: Mapped,
    typed: Typed,
    placement: Placement,
    options: &CompileOptions,
) -> Result<CompiledNetwork, CompileError> {
    let cores = mapped.cores.len();
    let (w, h) = placement.grid;
    if w * h < cores {
        return Err(CompileError::GridTooSmall {
            cores,
            capacity: w * h,
        });
    }

    // Local index of each physical neuron within its core.
    let mut local_of = vec![usize::MAX; mapped.templates.len()];
    for members in &mapped.cores {
        for (local, &n) in members.iter().enumerate() {
            local_of[n] = local;
        }
    }

    let config = ChipConfig {
        width: w,
        height: h,
        core_axons: options.core_axons,
        core_neurons: options.core_neurons,
        seed: options.seed,
        semantics: options.semantics,
        threads: options.threads,
        scheduling: options.scheduling,
        tile: None,
    };
    let mut builder = ChipBuilder::new(config);

    for (k, members) in mapped.cores.iter().enumerate() {
        let (x, y) = placement.positions[k];
        let core_builder = builder.core_mut(x, y);
        for (i, record) in mapped.axons[k].iter().enumerate() {
            core_builder
                .axon_type(i, typed.axon_types[k][i])
                .map_err(|e| CompileError::Emit(e.to_string()))?;
            for &(post, _) in &record.posts {
                core_builder
                    .synapse(i, local_of[post], true)
                    .map_err(|e| CompileError::Emit(e.to_string()))?;
            }
        }
        for (local, &n) in members.iter().enumerate() {
            let config = mapped.templates[n].with_weights(typed.weight_tables[n]);
            let destination = if let Some(&port) = mapped.direct_output.get(&n) {
                Destination::Output(port)
            } else if let Some((tc, axon, delay)) = mapped.neuron_dest[n] {
                let (tx, ty) = placement.positions[tc];
                Destination::Axon(AxonTarget {
                    offset: CoreOffset::new(tx as i32 - x as i32, ty as i32 - y as i32),
                    axon: axon as u16,
                    delay,
                })
            } else {
                Destination::Disabled
            };
            core_builder
                .neuron(local, config, destination)
                .map_err(|e| CompileError::Emit(e.to_string()))?;
        }
    }

    let chip = builder
        .build()
        .map_err(|e| CompileError::Emit(e.to_string()))?;

    let input_taps = mapped
        .input_taps
        .iter()
        .map(|taps| {
            taps.iter()
                .map(|&(core, axon, delay)| {
                    let (x, y) = placement.positions[core];
                    (x, y, axon, delay)
                })
                .collect()
        })
        .collect();

    let report = CompileReport {
        cores,
        grid: placement.grid,
        physical_neurons: mapped.templates.len(),
        relays: mapped.relays,
        axons_used: mapped.axons.iter().map(Vec::len).sum(),
        greedy_cost: placement.greedy_cost,
        annealed_cost: placement.annealed_cost,
        random_cost: placement.random_cost,
        total_traffic: placement.total_traffic,
    };

    let map = NetworkMap {
        grid: placement.grid,
        positions: placement.positions,
        faulty_cells: options.faulty_cells.clone(),
    };

    Ok(CompiledNetwork {
        chip,
        input_taps,
        output_ports: net.outputs().len(),
        report,
        map,
    })
}
