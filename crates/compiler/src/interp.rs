//! Direct interpreter for logical networks — the functional oracle.
//!
//! [`Interpreter`] executes a [`LogicalNetwork`] with per-synapse weights
//! and exact delays, reusing the integer neuron arithmetic of
//! [`brainsim_neuron::Neuron`] via `inject_raw`, so its semantics are the
//! compiled chip's semantics minus the hardware resource constraints. The
//! compiler's correctness tests assert that a compiled network's output
//! raster equals the interpreter's (for deterministic configurations and
//! direct output ports).

use brainsim_corelet::{LogicalNetwork, NodeRef};
use brainsim_neuron::{Lfsr, Neuron};

/// A logical-network interpreter.
#[derive(Debug, Clone)]
pub struct Interpreter {
    neurons: Vec<Neuron>,
    /// Input port → `(post, weight, delay)`.
    input_synapses: Vec<Vec<(usize, i32, u8)>>,
    /// Neuron → `(post, weight, delay)`.
    neuron_synapses: Vec<Vec<(usize, i32, u8)>>,
    outputs: Vec<usize>,
    wheel: [Vec<(usize, i32)>; 16],
    rng: Lfsr,
    now: u64,
}

impl Interpreter {
    /// Builds an interpreter for a network.
    pub fn new(net: &LogicalNetwork, seed: u32) -> Interpreter {
        let n = net.neurons().len();
        let mut input_synapses = vec![Vec::new(); net.inputs()];
        let mut neuron_synapses = vec![Vec::new(); n];
        for s in net.synapses() {
            let entry = (s.post.0, s.weight, s.delay);
            match s.pre {
                NodeRef::Input(port) => input_synapses[port].push(entry),
                NodeRef::Neuron(id) => neuron_synapses[id.0].push(entry),
            }
        }
        Interpreter {
            neurons: net.neurons().iter().cloned().map(Neuron::new).collect(),
            input_synapses,
            neuron_synapses,
            outputs: net.outputs().iter().map(|id| id.0).collect(),
            wheel: Default::default(),
            rng: Lfsr::new(seed),
            now: 0,
        }
    }

    /// Number of output ports.
    pub fn outputs(&self) -> usize {
        self.outputs.len()
    }

    /// The current tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// A neuron's membrane potential.
    pub fn potential(&self, neuron: usize) -> i32 {
        self.neurons[neuron].potential()
    }

    /// Advances one tick; `active_ports` lists input ports spiking this
    /// tick. Returns which output ports fired.
    ///
    /// # Panics
    ///
    /// Panics if a port index is out of range.
    pub fn step(&mut self, active_ports: &[usize]) -> Vec<bool> {
        let slot = (self.now % 16) as usize;
        let due = std::mem::take(&mut self.wheel[slot]);
        for (post, weight) in due {
            self.neurons[post].inject_raw(weight);
        }
        let mut fired = vec![false; self.neurons.len()];
        for (i, neuron) in self.neurons.iter_mut().enumerate() {
            fired[i] = neuron.finish_tick(&mut self.rng).fired();
        }
        for &port in active_ports {
            for &(post, w, d) in &self.input_synapses[port] {
                let at = ((self.now + d as u64) % 16) as usize;
                self.wheel[at].push((post, w));
            }
        }
        for (i, &did_fire) in fired.iter().enumerate() {
            if did_fire {
                for &(post, w, d) in &self.neuron_synapses[i] {
                    let at = ((self.now + d as u64) % 16) as usize;
                    self.wheel[at].push((post, w));
                }
            }
        }
        self.now += 1;
        self.outputs.iter().map(|&o| fired[o]).collect()
    }

    /// Runs `ticks` ticks with a stimulus closure (ports active per tick),
    /// returning the output raster.
    pub fn run<F>(&mut self, ticks: u64, mut stimulus: F) -> Vec<Vec<bool>>
    where
        F: FnMut(u64) -> Vec<usize>,
    {
        (0..ticks)
            .map(|t| {
                let ports = stimulus(t);
                self.step(&ports)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brainsim_corelet::{Corelet, NodeRef};
    use brainsim_neuron::NeuronConfig;

    #[test]
    fn interprets_a_relay_chain() {
        let mut c = Corelet::new("chain", 1);
        let t = NeuronConfig::builder().threshold(2).build().unwrap();
        let a = c.add_neuron(t.clone());
        let b = c.add_neuron(t);
        c.connect(NodeRef::Input(0), a, 2, 1).unwrap();
        c.connect(NodeRef::Neuron(a), b, 2, 3).unwrap();
        c.mark_output(b).unwrap();
        let mut interp = Interpreter::new(c.network(), 1);
        let raster = interp.run(8, |t| if t == 0 { vec![0] } else { vec![] });
        // Input t=0 → a fires t=1 → b integrates t=4 and fires.
        let fired_ticks: Vec<usize> = raster
            .iter()
            .enumerate()
            .filter_map(|(t, out)| out[0].then_some(t))
            .collect();
        assert_eq!(fired_ticks, vec![4]);
    }

    #[test]
    fn per_synapse_weights_are_exact() {
        // Two synapses with different weights onto one neuron — beyond the
        // 4-type limit's granularity if they had to share an axon, trivial
        // for the interpreter.
        let mut c = Corelet::new("w", 2);
        let t = NeuronConfig::builder().threshold(10).build().unwrap();
        let n = c.add_neuron(t);
        c.connect(NodeRef::Input(0), n, 7, 1).unwrap();
        c.connect(NodeRef::Input(1), n, 3, 1).unwrap();
        c.mark_output(n).unwrap();
        let mut interp = Interpreter::new(c.network(), 1);
        let raster = interp.run(3, |t| if t == 0 { vec![0, 1] } else { vec![] });
        assert!(raster[1][0], "7 + 3 = 10 reaches threshold at t=1");
    }
}
