//! Clock-driven floating-point LIF simulation.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Parameters of one floating-point LIF neuron.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifParams {
    /// Membrane time constant in ticks (τ).
    pub tau: f64,
    /// Resting potential.
    pub v_rest: f64,
    /// Firing threshold.
    pub v_thresh: f64,
    /// Post-spike reset potential.
    pub v_reset: f64,
    /// Absolute refractory period in ticks.
    pub refractory: u32,
}

impl Default for LifParams {
    fn default() -> Self {
        LifParams {
            tau: 20.0,
            v_rest: 0.0,
            v_thresh: 1.0,
            v_reset: 0.0,
            refractory: 0,
        }
    }
}

/// Where a synapse originates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SnnSource {
    /// External input channel.
    Input(usize),
    /// A neuron in the network.
    Neuron(usize),
}

/// Error from network construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnnError {
    /// Referenced neuron does not exist.
    NoSuchNeuron(usize),
    /// Referenced input channel does not exist.
    NoSuchInput(usize),
    /// Delay outside `1..=15` ticks.
    BadDelay(u8),
    /// Non-finite parameter or weight.
    NotFinite,
}

impl fmt::Display for SnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnnError::NoSuchNeuron(i) => write!(f, "neuron {i} does not exist"),
            SnnError::NoSuchInput(c) => write!(f, "input channel {c} does not exist"),
            SnnError::BadDelay(d) => write!(f, "delay {d} outside 1..=15"),
            SnnError::NotFinite => write!(f, "parameter is not finite"),
        }
    }
}

impl std::error::Error for SnnError {}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Synapse {
    target: usize,
    weight: f64,
    delay: u8,
}

/// Work counters for baseline cost comparison.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnnStats {
    /// Ticks simulated.
    pub ticks: u64,
    /// Neuron state updates (neurons × ticks — clock-driven cost).
    pub neuron_updates: u64,
    /// Synaptic events propagated.
    pub synaptic_events: u64,
    /// Spikes emitted.
    pub spikes: u64,
}

/// Builder for [`SnnNetwork`].
#[derive(Debug, Clone, Default)]
pub struct SnnBuilder {
    params: Vec<LifParams>,
    inputs: usize,
    input_synapses: Vec<Vec<Synapse>>,
    neuron_synapses: Vec<Vec<Synapse>>,
}

impl SnnBuilder {
    /// Starts an empty network with `inputs` external channels.
    pub fn new(inputs: usize) -> SnnBuilder {
        SnnBuilder {
            params: Vec::new(),
            inputs,
            input_synapses: vec![Vec::new(); inputs],
            neuron_synapses: Vec::new(),
        }
    }

    /// Adds a neuron, returning its index.
    ///
    /// # Errors
    ///
    /// [`SnnError::NotFinite`] if any parameter is NaN/∞, or τ ≤ 0.
    pub fn neuron(&mut self, params: LifParams) -> Result<usize, SnnError> {
        let finite = params.tau.is_finite()
            && params.tau > 0.0
            && params.v_rest.is_finite()
            && params.v_thresh.is_finite()
            && params.v_reset.is_finite();
        if !finite {
            return Err(SnnError::NotFinite);
        }
        self.params.push(params);
        self.neuron_synapses.push(Vec::new());
        Ok(self.params.len() - 1)
    }

    /// Connects `source → target` with the given weight and delay.
    ///
    /// # Errors
    ///
    /// See [`SnnError`].
    pub fn connect(
        &mut self,
        source: SnnSource,
        target: usize,
        weight: f64,
        delay: u8,
    ) -> Result<(), SnnError> {
        if target >= self.params.len() {
            return Err(SnnError::NoSuchNeuron(target));
        }
        if delay == 0 || delay > 15 {
            return Err(SnnError::BadDelay(delay));
        }
        if !weight.is_finite() {
            return Err(SnnError::NotFinite);
        }
        let synapse = Synapse {
            target,
            weight,
            delay,
        };
        match source {
            SnnSource::Input(c) => {
                if c >= self.inputs {
                    return Err(SnnError::NoSuchInput(c));
                }
                self.input_synapses[c].push(synapse);
            }
            SnnSource::Neuron(i) => {
                if i >= self.params.len() {
                    return Err(SnnError::NoSuchNeuron(i));
                }
                self.neuron_synapses[i].push(synapse);
            }
        }
        Ok(())
    }

    /// Finalises the network, placing every neuron at its resting potential.
    pub fn build(&self) -> SnnNetwork {
        let n = self.params.len();
        SnnNetwork {
            params: self.params.clone(),
            input_synapses: self.input_synapses.clone(),
            neuron_synapses: self.neuron_synapses.clone(),
            potentials: self.params.iter().map(|p| p.v_rest).collect(),
            refractory_left: vec![0; n],
            wheel: std::iter::repeat_with(|| vec![0.0; n]).take(16).collect(),
            now: 0,
            stats: SnnStats::default(),
        }
    }
}

/// A clock-driven floating-point LIF network.
///
/// Per tick, for every neuron: exact exponential decay toward rest over one
/// tick, plus the summed synaptic current due this tick; threshold test;
/// reset and refractory hold.
#[derive(Debug, Clone)]
pub struct SnnNetwork {
    params: Vec<LifParams>,
    input_synapses: Vec<Vec<Synapse>>,
    neuron_synapses: Vec<Vec<Synapse>>,
    potentials: Vec<f64>,
    refractory_left: Vec<u32>,
    /// 16-slot ring of pending synaptic currents per neuron.
    wheel: Vec<Vec<f64>>,
    now: u64,
    stats: SnnStats,
}

impl SnnNetwork {
    /// Number of neurons.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the network has no neurons.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Current tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Membrane potential of a neuron.
    pub fn potential(&self, neuron: usize) -> f64 {
        self.potentials[neuron]
    }

    /// Work counters.
    pub fn stats(&self) -> &SnnStats {
        &self.stats
    }

    /// Advances one tick; `inputs[c]` is whether channel `c` spikes this
    /// tick. Returns the spiking neurons.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is shorter than the declared channel count.
    pub fn step(&mut self, inputs: &[bool]) -> Vec<bool> {
        assert!(
            inputs.len() >= self.input_synapses.len(),
            "expected {} input channels",
            self.input_synapses.len()
        );
        let slot = (self.now % 16) as usize;
        let n = self.params.len();

        // Integrate: decay + due current.
        let mut fired = vec![false; n];
        #[allow(clippy::needless_range_loop)] // parallel indexing into 4 arrays
        for i in 0..n {
            let p = self.params[i];
            let current = self.wheel[slot][i];
            self.wheel[slot][i] = 0.0;
            if self.refractory_left[i] > 0 {
                self.refractory_left[i] -= 1;
                self.stats.neuron_updates += 1;
                continue;
            }
            let decayed = p.v_rest + (self.potentials[i] - p.v_rest) * (-1.0 / p.tau).exp();
            let v = decayed + current;
            if v >= p.v_thresh {
                fired[i] = true;
                self.potentials[i] = p.v_reset;
                self.refractory_left[i] = p.refractory;
                self.stats.spikes += 1;
            } else {
                self.potentials[i] = v;
            }
            self.stats.neuron_updates += 1;
        }

        // Propagate input and neuron spikes into future slots.
        for (c, &active) in inputs.iter().enumerate().take(self.input_synapses.len()) {
            if active {
                for s in &self.input_synapses[c] {
                    let at = ((self.now + s.delay as u64) % 16) as usize;
                    self.wheel[at][s.target] += s.weight;
                    self.stats.synaptic_events += 1;
                }
            }
        }
        for (i, &did_fire) in fired.iter().enumerate() {
            if did_fire {
                for k in 0..self.neuron_synapses[i].len() {
                    let s = self.neuron_synapses[i][k];
                    let at = ((self.now + s.delay as u64) % 16) as usize;
                    self.wheel[at][s.target] += s.weight;
                    self.stats.synaptic_events += 1;
                }
            }
        }

        self.now += 1;
        self.stats.ticks += 1;
        fired
    }

    /// Runs `ticks` steps with a stimulus closure, recording one neuron.
    pub fn run<F>(&mut self, ticks: u64, observe: usize, mut stimulus: F) -> Vec<bool>
    where
        F: FnMut(u64) -> Vec<bool>,
    {
        (0..ticks)
            .map(|t| {
                let input = stimulus(t);
                self.step(&input)[observe]
            })
            .collect()
    }

    /// Resets dynamic state (potentials to rest, wheel cleared, counters
    /// zeroed), keeping the wiring.
    pub fn reset(&mut self) {
        for (v, p) in self.potentials.iter_mut().zip(&self.params) {
            *v = p.v_rest;
        }
        self.refractory_left.fill(0);
        for slot in &mut self.wheel {
            slot.fill(0.0);
        }
        self.now = 0;
        self.stats = SnnStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single(params: LifParams, weight: f64) -> SnnNetwork {
        let mut b = SnnBuilder::new(1);
        let n = b.neuron(params).unwrap();
        b.connect(SnnSource::Input(0), n, weight, 1).unwrap();
        b.build()
    }

    #[test]
    fn quiescent_network_stays_at_rest() {
        let mut net = single(LifParams::default(), 0.5);
        for _ in 0..50 {
            let fired = net.step(&[false]);
            assert!(!fired[0]);
        }
        assert_eq!(net.potential(0), 0.0);
    }

    #[test]
    fn suprathreshold_input_fires_after_delay() {
        let mut net = single(LifParams::default(), 2.0);
        assert!(!net.step(&[true])[0]); // input registered, arrives next tick
        assert!(net.step(&[false])[0]);
        assert_eq!(net.potential(0), 0.0); // reset
    }

    #[test]
    fn potential_decays_exponentially() {
        let params = LifParams {
            tau: 10.0,
            v_thresh: 100.0,
            ..LifParams::default()
        };
        let mut net = single(params, 1.0);
        net.step(&[true]);
        net.step(&[false]); // V = 1.0 integrated this tick? (arrives, then decays next)
        let v1 = net.potential(0);
        net.step(&[false]);
        let v2 = net.potential(0);
        assert!(v2 < v1 && v2 > 0.0);
        assert!((v2 / v1 - (-0.1f64).exp()).abs() < 1e-9);
    }

    #[test]
    fn refractory_period_blocks_firing() {
        let params = LifParams {
            refractory: 3,
            ..LifParams::default()
        };
        let mut b = SnnBuilder::new(1);
        let n = b.neuron(params).unwrap();
        b.connect(SnnSource::Input(0), n, 2.0, 1).unwrap();
        let mut net = b.build();
        let raster = net.run(8, n, |_| vec![true]);
        // Fires at t=1, then refractory for 3 ticks (during which inputs are
        // discarded), fires again once out of refractory and re-charged.
        assert!(raster[1]);
        assert!(!raster[2] && !raster[3] && !raster[4]);
        assert!(raster[5]);
    }

    #[test]
    fn neuron_to_neuron_propagation() {
        let mut b = SnnBuilder::new(1);
        let a = b.neuron(LifParams::default()).unwrap();
        let c = b.neuron(LifParams::default()).unwrap();
        b.connect(SnnSource::Input(0), a, 2.0, 1).unwrap();
        b.connect(SnnSource::Neuron(a), c, 2.0, 2).unwrap();
        let mut net = b.build();
        let mut fired_c = Vec::new();
        for t in 0..6 {
            let fired = net.step(&[t == 0]);
            fired_c.push(fired[c]);
        }
        // a fires at 1; delay 2 → c integrates and fires at 3.
        assert_eq!(fired_c, vec![false, false, false, true, false, false]);
    }

    #[test]
    fn inhibition_lowers_potential() {
        let mut b = SnnBuilder::new(2);
        let n = b
            .neuron(LifParams {
                tau: 1e9,
                ..LifParams::default()
            })
            .unwrap();
        b.connect(SnnSource::Input(0), n, 0.6, 1).unwrap();
        b.connect(SnnSource::Input(1), n, -0.4, 1).unwrap();
        let mut net = b.build();
        net.step(&[true, true]);
        net.step(&[false, false]);
        assert!((net.potential(0) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn builder_validation() {
        let mut b = SnnBuilder::new(1);
        assert_eq!(
            b.neuron(LifParams {
                tau: 0.0,
                ..LifParams::default()
            }),
            Err(SnnError::NotFinite)
        );
        let n = b.neuron(LifParams::default()).unwrap();
        assert_eq!(
            b.connect(SnnSource::Input(3), n, 1.0, 1),
            Err(SnnError::NoSuchInput(3))
        );
        assert_eq!(
            b.connect(SnnSource::Neuron(7), n, 1.0, 1),
            Err(SnnError::NoSuchNeuron(7))
        );
        assert_eq!(
            b.connect(SnnSource::Input(0), 9, 1.0, 1),
            Err(SnnError::NoSuchNeuron(9))
        );
        assert_eq!(
            b.connect(SnnSource::Input(0), n, 1.0, 0),
            Err(SnnError::BadDelay(0))
        );
        assert_eq!(
            b.connect(SnnSource::Input(0), n, f64::NAN, 1),
            Err(SnnError::NotFinite)
        );
    }

    #[test]
    fn stats_count_clock_driven_work() {
        let mut net = single(LifParams::default(), 2.0);
        net.run(10, 0, |t| vec![t % 2 == 0]);
        let s = *net.stats();
        assert_eq!(s.ticks, 10);
        assert_eq!(s.neuron_updates, 10); // 1 neuron × 10 ticks
        assert_eq!(s.synaptic_events, 5); // 5 input spikes
        assert!(s.spikes >= 4);
    }

    #[test]
    fn reset_restores_rest() {
        let mut net = single(LifParams::default(), 2.0);
        net.run(5, 0, |_| vec![true]);
        net.reset();
        assert_eq!(net.now(), 0);
        assert_eq!(net.potential(0), 0.0);
        assert_eq!(net.stats().ticks, 0);
    }
}
