//! A deliberately naive golden model of the neurosynaptic core.
//!
//! [`GoldenCore`] re-implements the integer core semantics with the most
//! obvious data structures available — a `Vec<Vec<bool>>` crossbar and a
//! `BTreeMap` event calendar — and no performance tricks. It shares only
//! the [`brainsim_neuron::Neuron`] arithmetic with the optimised
//! implementation. The equivalence experiment (figure F5) and the
//! cross-crate property tests assert that `brainsim-core`'s bit-packed,
//! strategy-switched implementation produces bit-identical spike rasters.

use std::collections::BTreeMap;

use brainsim_neuron::{AxonType, Lfsr, Neuron, NeuronConfig};

/// The naive reference core.
#[derive(Debug, Clone)]
pub struct GoldenCore {
    axon_types: Vec<AxonType>,
    /// `crossbar[axon][neuron]`.
    crossbar: Vec<Vec<bool>>,
    neurons: Vec<Neuron>,
    rng: Lfsr,
    /// Event calendar: tick → axon indices due.
    calendar: BTreeMap<u64, Vec<usize>>,
    now: u64,
}

impl GoldenCore {
    /// Creates an empty golden core.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(axons: usize, neurons: usize, seed: u32) -> GoldenCore {
        assert!(axons > 0 && neurons > 0, "dimensions must be non-zero");
        GoldenCore {
            axon_types: vec![AxonType::A0; axons],
            crossbar: vec![vec![false; neurons]; axons],
            neurons: vec![Neuron::new(NeuronConfig::default()); neurons],
            rng: Lfsr::new(seed),
            calendar: BTreeMap::new(),
            now: 0,
        }
    }

    /// Sets an axon's type.
    ///
    /// # Panics
    ///
    /// Panics on a bad index.
    pub fn set_axon_type(&mut self, axon: usize, ty: AxonType) {
        self.axon_types[axon] = ty;
    }

    /// Sets a neuron's configuration.
    ///
    /// # Panics
    ///
    /// Panics on a bad index.
    pub fn set_neuron(&mut self, neuron: usize, config: NeuronConfig) {
        self.neurons[neuron] = Neuron::new(config);
    }

    /// Sets one crossbar bit.
    ///
    /// # Panics
    ///
    /// Panics on a bad index.
    pub fn set_synapse(&mut self, axon: usize, neuron: usize, connected: bool) {
        self.crossbar[axon][neuron] = connected;
    }

    /// Schedules an axon event at `target_tick` (absolute).
    ///
    /// # Panics
    ///
    /// Panics on a bad axon or a past tick.
    pub fn deliver(&mut self, axon: usize, target_tick: u64) {
        assert!(axon < self.axon_types.len(), "axon out of range");
        assert!(target_tick >= self.now, "cannot schedule in the past");
        let due = self.calendar.entry(target_tick).or_default();
        // Axon events are binary: deduplicate like the scheduler bitmap.
        if !due.contains(&axon) {
            due.push(axon);
        }
    }

    /// Evaluates one tick, returning fired neuron indices.
    pub fn tick(&mut self) -> Vec<u16> {
        let mut due = self.calendar.remove(&self.now).unwrap_or_default();
        due.sort_unstable();

        // Canonical semantics: per neuron (index order), per axon type
        // (index order), integrate the count of active connected axons.
        let mut fired = Vec::new();
        for (i, neuron) in self.neurons.iter_mut().enumerate() {
            for ty in AxonType::ALL {
                let count = due
                    .iter()
                    .filter(|&&a| self.axon_types[a] == ty && self.crossbar[a][i])
                    .count() as u32;
                neuron.integrate_count(ty, count, &mut self.rng);
            }
            if neuron.finish_tick(&mut self.rng).fired() {
                fired.push(i as u16);
            }
        }
        self.now += 1;
        fired
    }

    /// The current tick cursor.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// A neuron's membrane potential.
    pub fn potential(&self, neuron: usize) -> i32 {
        self.neurons[neuron].potential()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brainsim_neuron::Weight;

    fn relay(w: i32, threshold: u32) -> NeuronConfig {
        NeuronConfig::builder()
            .weight(AxonType::A0, Weight::saturating(w))
            .threshold(threshold)
            .build()
            .unwrap()
    }

    #[test]
    fn relays_a_spike() {
        let mut core = GoldenCore::new(4, 4, 1);
        core.set_neuron(2, relay(1, 1));
        core.set_synapse(1, 2, true);
        core.deliver(1, 0);
        assert_eq!(core.tick(), vec![2]);
        assert_eq!(core.tick(), Vec::<u16>::new());
    }

    #[test]
    fn duplicate_delivery_is_idempotent() {
        let mut core = GoldenCore::new(2, 1, 1);
        core.set_neuron(0, relay(1, 2));
        core.set_synapse(0, 0, true);
        core.deliver(0, 0);
        core.deliver(0, 0);
        // One axon event, weight 1 < threshold 2 → no fire.
        assert!(core.tick().is_empty());
        assert_eq!(core.potential(0), 1);
    }

    #[test]
    fn far_future_scheduling_works() {
        // Unlike the 16-slot ring, the calendar has no horizon; the chip
        // layer enforces the horizon, the golden model need not.
        let mut core = GoldenCore::new(1, 1, 1);
        core.set_neuron(0, relay(1, 1));
        core.set_synapse(0, 0, true);
        core.deliver(0, 100);
        for _ in 0..100 {
            assert!(core.tick().is_empty());
        }
        assert_eq!(core.tick(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_the_past_panics() {
        let mut core = GoldenCore::new(1, 1, 1);
        core.tick();
        core.deliver(0, 0);
    }
}
