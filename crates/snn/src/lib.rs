//! # brainsim-snn
//!
//! The conventional-software baseline: a clock-driven, floating-point
//! leaky integrate-and-fire simulator in the style of NEST/Brian, plus a
//! deliberately naive *golden* reimplementation of the integer core
//! semantics.
//!
//! Roles in the reproduction:
//!
//! * **Throughput baseline (figure F3)** — the float simulator touches every
//!   neuron every tick and every synapse of every firing neuron, the cost
//!   model the neurosynaptic architecture is compared against.
//! * **Accuracy golden model (table T2)** — applications are trained in
//!   floating point here, then quantised onto the chip's 4-weight axon-type
//!   scheme; the accuracy gap is the quantisation cost.
//! * **Equivalence oracle (figure F5)** — [`golden::GoldenCore`] is a
//!   straight-line, obviously-correct port of the core semantics used to
//!   cross-check the optimised bit-packed implementation.
//! * **Firing-pattern reference** — [`IzhikevichNeuron`] provides the
//!   continuous-dynamics model the behaviour catalogue's firing patterns
//!   are defined against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod golden;
mod izhikevich;
mod lif;

pub use izhikevich::{IzhikevichNeuron, IzhikevichParams};
pub use lif::{LifParams, SnnBuilder, SnnError, SnnNetwork, SnnSource, SnnStats};
