//! Izhikevich's two-variable neuron model — the standard floating-point
//! reference for biological firing patterns.
//!
//! Included as a second baseline alongside the LIF simulator: the integer
//! behaviour catalogue (`brainsim_neuron::behavior`) claims the silicon
//! neuron covers the canonical firing patterns; this module provides the
//! continuous-dynamics reference those patterns are defined against.
//!
//! Dynamics (Izhikevich 2003), integrated at 1 ms ticks with two 0.5 ms
//! half-steps for the fast variable (the standard stabilisation):
//!
//! ```text
//! v' = 0.04 v² + 5 v + 140 − u + I
//! u' = a (b v − u)
//! spike when v ≥ 30 mV:  v ← c,  u ← u + d
//! ```

use serde::{Deserialize, Serialize};

/// The four Izhikevich parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IzhikevichParams {
    /// Recovery time scale.
    pub a: f64,
    /// Recovery sensitivity to `v`.
    pub b: f64,
    /// Post-spike reset value of `v` (mV).
    pub c: f64,
    /// Post-spike increment of `u`.
    pub d: f64,
}

impl IzhikevichParams {
    /// Regular spiking (cortical excitatory): tonic with adaptation.
    pub const fn regular_spiking() -> IzhikevichParams {
        IzhikevichParams {
            a: 0.02,
            b: 0.2,
            c: -65.0,
            d: 8.0,
        }
    }

    /// Fast spiking (inhibitory interneuron): high-rate tonic.
    pub const fn fast_spiking() -> IzhikevichParams {
        IzhikevichParams {
            a: 0.1,
            b: 0.2,
            c: -65.0,
            d: 2.0,
        }
    }

    /// Chattering: high-frequency bursts.
    pub const fn chattering() -> IzhikevichParams {
        IzhikevichParams {
            a: 0.02,
            b: 0.2,
            c: -50.0,
            d: 2.0,
        }
    }

    /// Intrinsically bursting: initial burst then tonic.
    pub const fn intrinsically_bursting() -> IzhikevichParams {
        IzhikevichParams {
            a: 0.02,
            b: 0.2,
            c: -55.0,
            d: 4.0,
        }
    }

    /// Low-threshold spiking: rebound-capable inhibitory cell.
    pub const fn low_threshold_spiking() -> IzhikevichParams {
        IzhikevichParams {
            a: 0.02,
            b: 0.25,
            c: -65.0,
            d: 2.0,
        }
    }
}

impl Default for IzhikevichParams {
    fn default() -> Self {
        IzhikevichParams::regular_spiking()
    }
}

/// One Izhikevich neuron: two state variables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IzhikevichNeuron {
    params: IzhikevichParams,
    v: f64,
    u: f64,
}

impl IzhikevichNeuron {
    /// Creates a neuron at the resting state (`v = −70`, `u = b·v`).
    pub fn new(params: IzhikevichParams) -> IzhikevichNeuron {
        let v = -70.0;
        IzhikevichNeuron {
            params,
            v,
            u: params.b * v,
        }
    }

    /// Membrane potential (mV).
    pub fn v(&self) -> f64 {
        self.v
    }

    /// Recovery variable.
    pub fn u(&self) -> f64 {
        self.u
    }

    /// Advances one 1 ms tick under input current `i` (two 0.5 ms
    /// half-steps for `v`). Returns whether the neuron spiked.
    pub fn step(&mut self, i: f64) -> bool {
        for _ in 0..2 {
            self.v += 0.5 * (0.04 * self.v * self.v + 5.0 * self.v + 140.0 - self.u + i);
        }
        self.u += self.params.a * (self.params.b * self.v - self.u);
        if self.v >= 30.0 {
            self.v = self.params.c;
            self.u += self.params.d;
            true
        } else {
            false
        }
    }

    /// Runs `ticks` ticks of constant current, returning the spike raster.
    pub fn run_dc(&mut self, i: f64, ticks: usize) -> Vec<bool> {
        (0..ticks).map(|_| self.step(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count(raster: &[bool]) -> usize {
        raster.iter().filter(|&&s| s).count()
    }

    fn isis(raster: &[bool]) -> Vec<usize> {
        let times: Vec<usize> = raster
            .iter()
            .enumerate()
            .filter_map(|(t, &s)| s.then_some(t))
            .collect();
        times.windows(2).map(|w| w[1] - w[0]).collect()
    }

    #[test]
    fn resting_neuron_is_silent() {
        let mut n = IzhikevichNeuron::new(IzhikevichParams::regular_spiking());
        assert_eq!(count(&n.run_dc(0.0, 500)), 0);
        assert!((n.v() + 70.0).abs() < 10.0, "v drifted: {}", n.v());
    }

    #[test]
    fn regular_spiking_is_tonic_with_adaptation() {
        let mut n = IzhikevichNeuron::new(IzhikevichParams::regular_spiking());
        let raster = n.run_dc(10.0, 600);
        let isis = isis(&raster);
        assert!(isis.len() >= 5, "too few spikes: {}", isis.len());
        // Spike-frequency adaptation: later ISIs longer than the first.
        assert!(
            *isis.last().unwrap() > isis[0],
            "ISIs {isis:?} should lengthen"
        );
    }

    #[test]
    fn fast_spiking_outpaces_regular_spiking() {
        let mut rs = IzhikevichNeuron::new(IzhikevichParams::regular_spiking());
        let mut fs = IzhikevichNeuron::new(IzhikevichParams::fast_spiking());
        let rs_count = count(&rs.run_dc(10.0, 500));
        let fs_count = count(&fs.run_dc(10.0, 500));
        assert!(
            fs_count > rs_count,
            "FS {fs_count} should exceed RS {rs_count}"
        );
    }

    #[test]
    fn chattering_produces_bursts() {
        let mut n = IzhikevichNeuron::new(IzhikevichParams::chattering());
        let raster = n.run_dc(10.0, 600);
        let isis = isis(&raster);
        let short = isis.iter().filter(|&&i| i <= 6).count();
        let long = isis.iter().filter(|&&i| i > 12).count();
        assert!(
            short >= 4 && long >= 2,
            "expected burst structure, ISIs {isis:?}"
        );
    }

    #[test]
    fn firing_rate_grows_with_current() {
        let rates: Vec<usize> = [4.0, 8.0, 14.0]
            .iter()
            .map(|&i| {
                let mut n = IzhikevichNeuron::new(IzhikevichParams::regular_spiking());
                count(&n.run_dc(i, 500))
            })
            .collect();
        assert!(
            rates[0] < rates[1] && rates[1] < rates[2],
            "rates {rates:?}"
        );
    }
}
