//! # brainsim-energy
//!
//! The event-census energy model.
//!
//! In an event-driven neurosynaptic architecture, active energy is — by
//! design — linear in the number of discrete events: synaptic reads,
//! neuron updates, spike generations, router hops and scheduler accesses.
//! Static (leakage) power is proportional to the powered core count. The
//! chip's published figures (≈26 pJ per synaptic event, tens of mW for a
//! 4096-core chip at typical activity, tens of GSOPS/W) are therefore
//! reproducible from pure event counts, which is exactly what this crate
//! does: the simulator counts events ([`EventCensus`]) and
//! [`EnergyModel::report`] turns the census into power and efficiency
//! numbers.
//!
//! The default constants are calibrated to the published operating point of
//! the silicon lineage; they are plain fields, so ablations can sweep them.
//!
//! ```
//! use brainsim_energy::{EnergyModel, EventCensus};
//!
//! let model = EnergyModel::default();
//! let census = EventCensus {
//!     ticks: 1000,
//!     cores: 4096,
//!     synaptic_events: 500_000_000,
//!     neuron_updates: 4096 * 256 * 1000,
//!     spikes: 20_000_000,
//!     axon_events: 20_000_000,
//!     hops: 60_000_000,
//!     link_crossings: 0,
//!     ..EventCensus::default()
//! };
//! let report = model.report(&census);
//! assert!(report.total_mw > 0.0);
//! assert!(report.gsops_per_watt > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use serde::{Deserialize, Serialize};

/// Energy cost constants (all per-event costs in picojoules).
///
/// Defaults are calibrated to the published TrueNorth-lineage operating
/// point: 26 pJ per synaptic event, sub-mW per-core budgets, ~1 ms tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per synaptic event (crossbar read + integration), pJ.
    pub pj_per_synaptic_event: f64,
    /// Energy per neuron leak/threshold evaluation, pJ.
    pub pj_per_neuron_update: f64,
    /// Energy per generated spike (neuron fire + packet launch), pJ.
    pub pj_per_spike: f64,
    /// Energy per router hop, pJ.
    pub pj_per_hop: f64,
    /// Energy per scheduler (axon-event) access, pJ.
    pub pj_per_axon_event: f64,
    /// Energy per inter-chip link crossing (serialised peripheral link), pJ.
    pub pj_per_link_crossing: f64,
    /// Static (leakage) power per powered core, mW.
    pub static_mw_per_core: f64,
    /// Wall-clock duration of one tick, seconds (1 ms on silicon).
    pub tick_seconds: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            pj_per_synaptic_event: 26.0,
            pj_per_neuron_update: 1.2,
            pj_per_spike: 10.0,
            pj_per_hop: 3.0,
            pj_per_axon_event: 1.0,
            pj_per_link_crossing: 900.0,
            static_mw_per_core: 0.010,
            tick_seconds: 1e-3,
        }
    }
}

/// Raw event counts accumulated by a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCensus {
    /// Ticks simulated.
    pub ticks: u64,
    /// Powered cores.
    pub cores: u64,
    /// Synaptic events integrated.
    pub synaptic_events: u64,
    /// Neuron leak/threshold evaluations.
    pub neuron_updates: u64,
    /// Spikes generated.
    pub spikes: u64,
    /// Axon (scheduler) events consumed.
    pub axon_events: u64,
    /// Router hops traversed.
    pub hops: u64,
    /// Inter-chip (tile boundary) link crossings.
    pub link_crossings: u64,
    /// Spike packets lost in transit (fault drops, buffer-overflow
    /// evictions, mesh-edge discards).
    pub packets_dropped: u64,
    /// Injection attempts refused by source-FIFO backpressure.
    pub packets_rejected: u64,
    /// Hop moves stalled by full downstream buffers (stall-cycles).
    pub flit_stalls: u64,
}

impl EventCensus {
    /// Accumulates another census into this one (`cores` takes the maximum,
    /// the rest add).
    pub fn merge(&mut self, other: &EventCensus) {
        self.ticks += other.ticks;
        self.cores = self.cores.max(other.cores);
        self.synaptic_events += other.synaptic_events;
        self.neuron_updates += other.neuron_updates;
        self.spikes += other.spikes;
        self.axon_events += other.axon_events;
        self.hops += other.hops;
        self.link_crossings += other.link_crossings;
        self.packets_dropped += other.packets_dropped;
        self.packets_rejected += other.packets_rejected;
        self.flit_stalls += other.flit_stalls;
    }
}

/// Derived power/efficiency figures for a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Total active energy over the run, joules.
    pub active_energy_j: f64,
    /// Active power averaged over simulated time, mW.
    pub active_mw: f64,
    /// Static power, mW.
    pub static_mw: f64,
    /// Total power, mW.
    pub total_mw: f64,
    /// Synaptic operations per simulated second.
    pub sops: f64,
    /// Synaptic-operation efficiency, GSOPS per watt (total power).
    pub gsops_per_watt: f64,
    /// Effective energy per synaptic event including all overheads, pJ.
    pub pj_per_synaptic_event_effective: f64,
}

impl EnergyModel {
    /// Converts an event census into power and efficiency figures.
    ///
    /// Simulated time is `ticks × tick_seconds`; a zero-tick census yields a
    /// report with zero power (no division by zero).
    pub fn report(&self, census: &EventCensus) -> EnergyReport {
        const PJ: f64 = 1e-12;
        let active_energy_j = PJ
            * (census.synaptic_events as f64 * self.pj_per_synaptic_event
                + census.neuron_updates as f64 * self.pj_per_neuron_update
                + census.spikes as f64 * self.pj_per_spike
                + census.axon_events as f64 * self.pj_per_axon_event
                + census.hops as f64 * self.pj_per_hop
                + census.link_crossings as f64 * self.pj_per_link_crossing);
        let seconds = census.ticks as f64 * self.tick_seconds;
        let active_mw = if seconds > 0.0 {
            active_energy_j / seconds * 1e3
        } else {
            0.0
        };
        let static_mw = census.cores as f64 * self.static_mw_per_core;
        let total_mw = active_mw + static_mw;
        let sops = if seconds > 0.0 {
            census.synaptic_events as f64 / seconds
        } else {
            0.0
        };
        let gsops_per_watt = if total_mw > 0.0 {
            sops / 1e9 / (total_mw / 1e3)
        } else {
            0.0
        };
        let pj_per_synaptic_event_effective = if census.synaptic_events > 0 {
            (active_energy_j + static_mw / 1e3 * seconds) / PJ / census.synaptic_events as f64
        } else {
            0.0
        };
        EnergyReport {
            active_energy_j,
            active_mw,
            static_mw,
            total_mw,
            sops,
            gsops_per_watt,
            pj_per_synaptic_event_effective,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn census(synaptic: u64, ticks: u64, cores: u64) -> EventCensus {
        EventCensus {
            ticks,
            cores,
            synaptic_events: synaptic,
            neuron_updates: cores * 256 * ticks,
            spikes: synaptic / 100,
            axon_events: synaptic / 100,
            hops: synaptic / 50,
            ..EventCensus::default()
        }
    }

    #[test]
    fn zero_activity_is_static_only() {
        let model = EnergyModel::default();
        let report = model.report(&EventCensus {
            ticks: 100,
            cores: 4096,
            ..Default::default()
        });
        assert_eq!(report.active_energy_j, 0.0);
        assert!((report.static_mw - 40.96).abs() < 1e-9);
        assert_eq!(report.total_mw, report.static_mw + report.active_mw);
    }

    #[test]
    fn empty_census_has_no_power() {
        let report = EnergyModel::default().report(&EventCensus::default());
        assert_eq!(report.total_mw, 0.0);
        assert_eq!(report.gsops_per_watt, 0.0);
        assert_eq!(report.pj_per_synaptic_event_effective, 0.0);
    }

    #[test]
    fn active_power_is_linear_in_events() {
        let model = EnergyModel::default();
        let r1 = model.report(&census(1_000_000, 100, 64));
        let r2 = model.report(&census(2_000_000, 100, 64));
        // Subtract the neuron-update baseline, which is identical in both.
        let baseline = EnergyModel {
            pj_per_synaptic_event: 0.0,
            pj_per_spike: 0.0,
            pj_per_axon_event: 0.0,
            pj_per_hop: 0.0,
            ..model
        }
        .report(&census(1_000_000, 100, 64))
        .active_mw;
        let a1 = r1.active_mw - baseline;
        let a2 = r2.active_mw - baseline;
        assert!((a2 / a1 - 2.0).abs() < 1e-6, "a1={a1} a2={a2}");
    }

    #[test]
    fn efficiency_approaches_synaptic_limit_at_high_activity() {
        let model = EnergyModel::default();
        // Extremely high activity: overheads amortise, effective pJ/event
        // approaches the per-event constants (26 + small overheads).
        let heavy = EventCensus {
            ticks: 1000,
            cores: 1,
            synaptic_events: 10_000_000_000,
            neuron_updates: 256_000,
            spikes: 1_000_000,
            axon_events: 1_000_000,
            hops: 1_000_000,
            ..EventCensus::default()
        };
        let report = model.report(&heavy);
        assert!(
            (report.pj_per_synaptic_event_effective - 26.0).abs() < 0.5,
            "effective = {}",
            report.pj_per_synaptic_event_effective
        );
        // 26 pJ/op bounds efficiency near 38 GSOPS/W.
        assert!(report.gsops_per_watt > 30.0 && report.gsops_per_watt < 40.0);
    }

    #[test]
    fn census_merge_adds_and_maxes() {
        let mut a = census(100, 10, 4);
        let b = census(50, 5, 8);
        a.merge(&b);
        assert_eq!(a.synaptic_events, 150);
        assert_eq!(a.ticks, 15);
        assert_eq!(a.cores, 8);
    }

    #[test]
    fn default_chip_scale_power_in_published_band() {
        // 4096 cores at ~20 Hz mean rate, 128 synapses per neuron:
        // the published chip reports total power of order 60–150 mW.
        let model = EnergyModel::default();
        let rate_hz = 20.0;
        let synapses_per_neuron = 128.0;
        let neurons = 4096.0 * 256.0;
        let seconds = 1.0;
        let census = EventCensus {
            ticks: 1000,
            cores: 4096,
            synaptic_events: (neurons * rate_hz * synapses_per_neuron * seconds) as u64,
            neuron_updates: (neurons * 1000.0) as u64,
            spikes: (neurons * rate_hz) as u64,
            axon_events: (neurons * rate_hz) as u64,
            hops: (neurons * rate_hz * 10.0) as u64,
            ..EventCensus::default()
        };
        let report = model.report(&census);
        assert!(
            report.total_mw > 30.0 && report.total_mw < 300.0,
            "total = {} mW",
            report.total_mw
        );
    }
}
