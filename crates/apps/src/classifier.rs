//! The rate-coded digit classifier: float training → 4-level quantisation
//! → chip deployment, with a floating-point LIF baseline.

use brainsim_compiler::{compile, CompileOptions, CompiledNetwork};
use brainsim_corelet::{Corelet, NodeRef};
use brainsim_encoding::{Frame, FrameEncoder, RateCode};
use brainsim_neuron::{Lfsr, NeuronConfig};
use brainsim_snn::{LifParams, SnnBuilder, SnnNetwork, SnnSource};

use crate::digits::{Sample, CLASSES, PIXELS};

/// Floating-point class weights, `weights[class][pixel]`.
pub type FloatWeights = Vec<Vec<f64>>;

/// Trains an *averaged* multi-class perceptron on the samples.
///
/// Classic update — on a misprediction, add the image to the true class row
/// and subtract it from the predicted row — but the returned weights are
/// the average of the weight vector over all steps, which generalises far
/// better than the final iterate. Deterministic (no shuffling).
pub fn train_perceptron(train: &[Sample], epochs: usize) -> FloatWeights {
    let mut weights = vec![vec![0.0f64; PIXELS]; CLASSES];
    let mut sum = vec![vec![0.0f64; PIXELS]; CLASSES];
    for _ in 0..epochs {
        for sample in train {
            let prediction = argmax(&scores(&weights, &sample.frame));
            if prediction != sample.label {
                for (p, &x) in sample.frame.pixels().iter().enumerate() {
                    weights[sample.label][p] += x;
                    weights[prediction][p] -= x;
                }
            }
            for (avg_row, w_row) in sum.iter_mut().zip(&weights) {
                for (a, &w) in avg_row.iter_mut().zip(w_row) {
                    *a += w;
                }
            }
        }
    }
    let steps = (epochs * train.len()).max(1) as f64;
    for row in sum.iter_mut() {
        for a in row.iter_mut() {
            *a /= steps;
        }
    }
    sum
}

/// Dot-product class scores of a frame.
pub fn scores(weights: &FloatWeights, frame: &Frame) -> Vec<f64> {
    weights
        .iter()
        .map(|row| row.iter().zip(frame.pixels()).map(|(w, x)| w * x).sum())
        .collect()
}

/// Index of the maximum (first on ties).
pub fn argmax(values: &[f64]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite scores"))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Float-reference accuracy (pure dot product, the upper bound).
pub fn float_accuracy(weights: &FloatWeights, test: &[Sample]) -> f64 {
    let correct = test
        .iter()
        .filter(|s| argmax(&scores(weights, &s.frame)) == s.label)
        .count();
    correct as f64 / test.len().max(1) as f64
}

/// Quantises one weight row to at most 4 signed integer levels via 1-D
/// Lloyd (k-means) on the non-zero weights, scaled so the largest level
/// magnitude is `max_level`.
///
/// The 4-level budget is exactly the axon-type constraint of the core:
/// each neuron owns one signed 9-bit weight per axon type.
pub fn quantize_row(row: &[f64], max_level: i32) -> Vec<i32> {
    let max_abs = row.iter().fold(0.0f64, |m, &w| m.max(w.abs()));
    if max_abs == 0.0 {
        return vec![0; row.len()];
    }
    // Initialise 4 centroids spread over [-max, max].
    let mut centroids = [
        -0.75 * max_abs,
        -0.25 * max_abs,
        0.25 * max_abs,
        0.75 * max_abs,
    ];
    for _ in 0..12 {
        let mut sums = [0.0f64; 4];
        let mut counts = [0usize; 4];
        for &w in row {
            let k = nearest(&centroids, w);
            sums[k] += w;
            counts[k] += 1;
        }
        for k in 0..4 {
            if counts[k] > 0 {
                centroids[k] = sums[k] / counts[k] as f64;
            }
        }
    }
    let scale = max_level as f64 / max_abs;
    let levels: Vec<i32> = centroids
        .iter()
        .map(|&c| (c * scale).round() as i32)
        .collect();
    row.iter()
        .map(|&w| levels[nearest(&centroids, w)])
        .collect()
}

fn nearest(centroids: &[f64; 4], w: f64) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (k, &c) in centroids.iter().enumerate() {
        let d = (w - c).abs();
        if d < best_d {
            best_d = d;
            best = k;
        }
    }
    best
}

/// A digit classifier deployed on the chip.
#[derive(Debug)]
pub struct ChipClassifier {
    compiled: CompiledNetwork,
    window: usize,
}

impl ChipClassifier {
    /// Builds and compiles the classifier from quantised weights.
    ///
    /// `threshold` is the output neurons' firing threshold (linear reset, so
    /// the spike count is proportional to the accumulated drive).
    ///
    /// # Errors
    ///
    /// Propagates compiler errors (e.g. more than 4 distinct levels, which
    /// [`quantize_row`] rules out by construction).
    pub fn build(
        quantized: &[Vec<i32>],
        threshold: u32,
        window: usize,
    ) -> Result<ChipClassifier, brainsim_compiler::CompileError> {
        let mut corelet = Corelet::new("digit-classifier", PIXELS);
        // No negative floor: the membrane must accumulate negative evidence
        // so the spike count tracks the full signed dot product.
        let template = NeuronConfig::builder()
            .threshold(threshold)
            .reset_mode(brainsim_neuron::ResetMode::Linear)
            .build()
            .expect("classifier template is valid");
        let outputs = corelet.add_population(template, CLASSES);
        for (class, row) in quantized.iter().enumerate() {
            for (pixel, &w) in row.iter().enumerate() {
                if w != 0 {
                    corelet
                        .connect(NodeRef::Input(pixel), outputs[class], w, 1)
                        .expect("classifier wiring is valid");
                }
            }
        }
        for &o in &outputs {
            corelet.mark_output(o).expect("output exists");
        }
        let compiled = compile(corelet.network(), &CompileOptions::default())?;
        Ok(ChipClassifier { compiled, window })
    }

    /// The compiled network (for energy-census access).
    pub fn compiled(&self) -> &CompiledNetwork {
        &self.compiled
    }

    /// Mutable access to the compiled network.
    pub fn compiled_mut(&mut self) -> &mut CompiledNetwork {
        &mut self.compiled
    }

    /// The encoding window in ticks.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Classifies one frame: rate-encode over the window, run, take the
    /// output population's argmax spike count.
    pub fn classify(&mut self, frame: &Frame) -> usize {
        self.compiled.reset();
        let encoder = FrameEncoder::new(frame, self.window);
        let mut counts = [0usize; CLASSES];
        // Window ticks of stimulus plus drain time for the last events.
        let total = self.window as u64 + 4;
        for t in 0..total {
            if t < self.window as u64 {
                let spikes = encoder.tick_spikes(t as usize);
                for (pixel, &s) in spikes.iter().enumerate() {
                    if s {
                        self.compiled.inject(pixel, t).expect("pixel port exists");
                    }
                }
            }
            for (class, fired) in self.compiled.tick().into_iter().enumerate() {
                if fired {
                    counts[class] += 1;
                }
            }
        }
        counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Accuracy over a test set.
    pub fn accuracy(&mut self, test: &[Sample]) -> f64 {
        let correct = test
            .iter()
            .filter(|s| {
                let frame = s.frame.clone();
                self.classify(&frame) == s.label
            })
            .count();
        correct as f64 / test.len().max(1) as f64
    }

    /// Classifies one frame under *stochastic* rate coding: each pixel's
    /// spikes are independent Bernoulli draws from a seeded LFSR, the
    /// silicon's pseudo-random input mode. Noisier than the deterministic
    /// error-diffusion code at equal window length.
    pub fn classify_stochastic(&mut self, frame: &Frame, seed: u32) -> usize {
        self.compiled.reset();
        let code = RateCode::new(self.window);
        let mut rng = Lfsr::new(seed);
        let trains: Vec<Vec<bool>> = frame
            .pixels()
            .iter()
            .map(|&p| code.encode_stochastic(p, &mut rng))
            .collect();
        let mut counts = [0usize; CLASSES];
        for t in 0..(self.window as u64 + 4) {
            if (t as usize) < self.window {
                for (pixel, train) in trains.iter().enumerate() {
                    if train[t as usize] {
                        self.compiled.inject(pixel, t).expect("pixel port exists");
                    }
                }
            }
            for (class, fired) in self.compiled.tick().into_iter().enumerate() {
                if fired {
                    counts[class] += 1;
                }
            }
        }
        counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Accuracy under stochastic rate coding.
    pub fn accuracy_stochastic(&mut self, test: &[Sample], seed: u32) -> f64 {
        let correct = test
            .iter()
            .enumerate()
            .filter(|(i, s)| {
                let frame = s.frame.clone();
                self.classify_stochastic(&frame, seed.wrapping_add(*i as u32)) == s.label
            })
            .count();
        correct as f64 / test.len().max(1) as f64
    }
}

/// The floating-point LIF baseline: the same topology simulated by the
/// clock-driven float simulator with unquantised weights.
#[derive(Debug)]
pub struct LifClassifier {
    net: SnnNetwork,
    window: usize,
}

impl LifClassifier {
    /// Builds the baseline from float weights. `v_thresh` plays the role of
    /// the chip threshold; weights are used at full precision.
    pub fn build(weights: &FloatWeights, v_thresh: f64, window: usize) -> LifClassifier {
        let mut builder = SnnBuilder::new(PIXELS);
        let params = LifParams {
            tau: 1e9, // effectively non-leaky, like the chip config
            v_rest: 0.0,
            v_thresh,
            v_reset: 0.0,
            refractory: 0,
        };
        let neurons: Vec<usize> = (0..CLASSES)
            .map(|_| builder.neuron(params).expect("valid LIF params"))
            .collect();
        for (class, row) in weights.iter().enumerate() {
            for (pixel, &w) in row.iter().enumerate() {
                if w != 0.0 {
                    builder
                        .connect(SnnSource::Input(pixel), neurons[class], w, 1)
                        .expect("valid wiring");
                }
            }
        }
        LifClassifier {
            net: builder.build(),
            window,
        }
    }

    /// Classifies one frame by output spike counts.
    pub fn classify(&mut self, frame: &Frame) -> usize {
        self.net.reset();
        let encoder = FrameEncoder::new(frame, self.window);
        let mut counts = [0usize; CLASSES];
        for t in 0..(self.window + 4) {
            let input = if t < self.window {
                encoder.tick_spikes(t)
            } else {
                vec![false; PIXELS]
            };
            for (class, &fired) in self.net.step(&input).iter().enumerate().take(CLASSES) {
                if fired {
                    counts[class] += 1;
                }
            }
        }
        counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Accuracy over a test set.
    pub fn accuracy(&mut self, test: &[Sample]) -> f64 {
        let correct = test
            .iter()
            .filter(|s| self.classify(&s.frame) == s.label)
            .count();
        correct as f64 / test.len().max(1) as f64
    }
}

/// Suggests a chip threshold so the correct class fires roughly once per
/// tick while weaker classes fire proportionally less.
///
/// Under rate coding a pixel with intensity 1 spikes every tick, so the
/// per-tick drive of class `c` is the full dot product `w_c · x`; the
/// linear-reset spike count over the window is `≈ window · (w_c·x) / θ`.
/// Picking `θ` equal to the mean correct-class dot product places the
/// correct class at the saturation knee and spreads the rest below it.
pub fn suggest_threshold(quantized: &[Vec<i32>], samples: &[Sample], _window: usize) -> u32 {
    let mut total = 0.0f64;
    let mut n = 0usize;
    for s in samples.iter().take(50) {
        let row = &quantized[s.label];
        let drive: f64 = row
            .iter()
            .zip(s.frame.pixels())
            .map(|(&w, &x)| w as f64 * x)
            .sum();
        if drive > 0.0 {
            total += drive;
            n += 1;
        }
    }
    if n == 0 {
        1
    } else {
        (total / n as f64).max(1.0).round() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digits;

    #[test]
    fn perceptron_separates_clean_glyphs() {
        let train = digits::generate(4, 0.0, 11);
        let weights = train_perceptron(&train, 12);
        let acc = float_accuracy(&weights, &train);
        assert!(acc > 0.95, "training accuracy {acc}");
    }

    #[test]
    fn quantize_row_uses_at_most_four_levels() {
        let row: Vec<f64> = (0..64).map(|i| (i as f64 - 32.0) / 7.0).collect();
        let q = quantize_row(&row, 32);
        let mut levels: Vec<i32> = q.clone();
        levels.sort_unstable();
        levels.dedup();
        assert!(levels.len() <= 4, "levels {levels:?}");
        assert!(q.iter().all(|&w| w.abs() <= 32));
        // Monotone: larger weights never map to smaller levels.
        let mut pairs: Vec<(f64, i32)> = row.iter().copied().zip(q.iter().copied()).collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in pairs.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn quantize_zero_row_is_zero() {
        assert_eq!(quantize_row(&[0.0; 8], 32), vec![0; 8]);
    }

    #[test]
    fn chip_classifier_beats_chance_and_tracks_float() {
        let train = digits::generate(20, 0.02, 21);
        let test = digits::generate(4, 0.05, 99);
        let weights = train_perceptron(&train, 15);
        let float_acc = float_accuracy(&weights, &test);

        let quantized: Vec<Vec<i32>> = weights.iter().map(|row| quantize_row(row, 32)).collect();
        let window = 16;
        let threshold = suggest_threshold(&quantized, &train, window);
        let mut chip = ChipClassifier::build(&quantized, threshold, window).expect("compiles");
        let chip_acc = chip.accuracy(&test);

        assert!(float_acc > 0.8, "float accuracy {float_acc}");
        assert!(chip_acc > 0.5, "chip accuracy {chip_acc}");
        assert!(
            chip_acc <= float_acc + 0.1,
            "quantised chip should not beat float by a margin: {chip_acc} vs {float_acc}"
        );
    }

    #[test]
    fn stochastic_rate_coding_tracks_deterministic() {
        let train = digits::generate(12, 0.02, 21);
        let test = digits::generate(3, 0.05, 99);
        let weights = train_perceptron(&train, 10);
        let quantized: Vec<Vec<i32>> = weights.iter().map(|row| quantize_row(row, 32)).collect();
        let window = 24;
        let threshold = suggest_threshold(&quantized, &train, window);
        let mut chip = ChipClassifier::build(&quantized, threshold, window).expect("compiles");
        let det = chip.accuracy(&test);
        let stoch = chip.accuracy_stochastic(&test, 0xFACE);
        assert!(stoch > 0.4, "stochastic accuracy {stoch}");
        assert!(
            stoch <= det + 0.15,
            "stochastic {stoch} should not beat deterministic {det} by a margin"
        );
    }

    #[test]
    fn lif_baseline_beats_chance() {
        let train = digits::generate(6, 0.02, 31);
        let test = digits::generate(3, 0.05, 77);
        let weights = train_perceptron(&train, 10);
        let mut lif = LifClassifier::build(&weights, 30.0, 16);
        let acc = lif.accuracy(&test);
        assert!(acc > 0.5, "LIF accuracy {acc}");
    }
}
