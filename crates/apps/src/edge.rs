//! Orientation-selective edge filter bank (saliency front-end).
//!
//! Four 3×3 oriented kernels (horizontal, vertical, two diagonals) are
//! mapped onto chip neurons, one neuron per image position per
//! orientation. Each kernel uses two weight levels (`+2` centre line,
//! `−1` flanks), well within the 4-level axon-type budget.

use brainsim_compiler::{compile, CompileError, CompileOptions, CompiledNetwork};
use brainsim_corelet::{Corelet, NodeRef};
use brainsim_encoding::{Frame, FrameEncoder};
use brainsim_neuron::NeuronConfig;

/// The four filter orientations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// Horizontal line (0°).
    Horizontal,
    /// Diagonal at 45°.
    Diagonal45,
    /// Vertical line (90°).
    Vertical,
    /// Diagonal at 135°.
    Diagonal135,
}

impl Orientation {
    /// All orientations in output order.
    pub const ALL: [Orientation; 4] = [
        Orientation::Horizontal,
        Orientation::Diagonal45,
        Orientation::Vertical,
        Orientation::Diagonal135,
    ];

    /// The 3×3 kernel: `+2` along the oriented line, `−1` elsewhere.
    pub fn kernel(self) -> [[i32; 3]; 3] {
        match self {
            Orientation::Horizontal => [[-1, -1, -1], [2, 2, 2], [-1, -1, -1]],
            Orientation::Vertical => [[-1, 2, -1], [-1, 2, -1], [-1, 2, -1]],
            Orientation::Diagonal45 => [[-1, -1, 2], [-1, 2, -1], [2, -1, -1]],
            Orientation::Diagonal135 => [[2, -1, -1], [-1, 2, -1], [-1, -1, 2]],
        }
    }
}

/// A compiled filter bank over `side × side` inputs.
#[derive(Debug)]
pub struct EdgeFilterBank {
    compiled: CompiledNetwork,
    side: usize,
    out_side: usize,
    window: usize,
}

impl EdgeFilterBank {
    /// Builds and compiles the filter bank.
    ///
    /// `threshold` controls selectivity: a neuron fires when its receptive
    /// field matches its orientation strongly enough within a tick
    /// (an aligned bar drives `3 × 2 = 6` units per tick).
    ///
    /// # Errors
    ///
    /// Propagates compiler errors.
    ///
    /// # Panics
    ///
    /// Panics if `side < 3`.
    pub fn build(
        side: usize,
        threshold: u32,
        window: usize,
    ) -> Result<EdgeFilterBank, CompileError> {
        assert!(side >= 3, "filter bank needs at least a 3x3 image");
        let out_side = side - 2;
        let mut corelet = Corelet::new("edge-filter-bank", side * side);
        let template = NeuronConfig::builder()
            .threshold(threshold)
            .negative_threshold(0)
            .build()
            .expect("filter template is valid");
        for orientation in Orientation::ALL {
            let kernel = orientation.kernel();
            for oy in 0..out_side {
                for ox in 0..out_side {
                    let neuron = corelet.add_neuron(template.clone());
                    for (ky, row) in kernel.iter().enumerate() {
                        for (kx, &w) in row.iter().enumerate() {
                            let pixel = (oy + ky) * side + (ox + kx);
                            corelet
                                .connect(NodeRef::Input(pixel), neuron, w, 1)
                                .expect("filter wiring is valid");
                        }
                    }
                    corelet.mark_output(neuron).expect("neuron exists");
                }
            }
        }
        let compiled = compile(corelet.network(), &CompileOptions::default())?;
        Ok(EdgeFilterBank {
            compiled,
            side,
            out_side,
            window,
        })
    }

    /// Output map side length (`side − 2`).
    pub fn out_side(&self) -> usize {
        self.out_side
    }

    /// The compiled network.
    pub fn compiled(&self) -> &CompiledNetwork {
        &self.compiled
    }

    /// Mutable access to the compiled network.
    pub fn compiled_mut(&mut self) -> &mut CompiledNetwork {
        &mut self.compiled
    }

    /// Runs a frame through the bank, returning per-orientation response
    /// maps of spike counts (row-major `out_side × out_side`).
    ///
    /// # Panics
    ///
    /// Panics if the frame dimensions do not match.
    pub fn respond(&mut self, frame: &Frame) -> [Vec<u32>; 4] {
        assert_eq!(frame.width(), self.side, "frame width mismatch");
        assert_eq!(frame.height(), self.side, "frame height mismatch");
        self.compiled.reset();
        let encoder = FrameEncoder::new(frame, self.window);
        let per_map = self.out_side * self.out_side;
        let mut maps: [Vec<u32>; 4] = [
            vec![0; per_map],
            vec![0; per_map],
            vec![0; per_map],
            vec![0; per_map],
        ];
        for t in 0..(self.window as u64 + 4) {
            if t < self.window as u64 {
                for (pixel, &s) in encoder.tick_spikes(t as usize).iter().enumerate() {
                    if s {
                        self.compiled.inject(pixel, t).expect("pixel port exists");
                    }
                }
            }
            for (port, fired) in self.compiled.tick().into_iter().enumerate() {
                if fired {
                    maps[port / per_map][port % per_map] += 1;
                }
            }
        }
        maps
    }

    /// Total response per orientation for a frame.
    pub fn orientation_energy(&mut self, frame: &Frame) -> [u64; 4] {
        let maps = self.respond(frame);
        let mut energy = [0u64; 4];
        for (o, map) in maps.iter().enumerate() {
            energy[o] = map.iter().map(|&c| c as u64).sum();
        }
        energy
    }
}

/// Renders a test bar of the given orientation through the frame centre.
pub fn bar_frame(side: usize, orientation: Orientation) -> Frame {
    let mut pixels = vec![0.0; side * side];
    let mid = side / 2;
    for i in 0..side {
        let (x, y) = match orientation {
            Orientation::Horizontal => (i, mid),
            Orientation::Vertical => (mid, i),
            Orientation::Diagonal45 => (i, side - 1 - i),
            Orientation::Diagonal135 => (i, i),
        };
        pixels[y * side + x] = 1.0;
    }
    Frame::new(side, side, pixels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_are_balanced() {
        for o in Orientation::ALL {
            let sum: i32 = o.kernel().iter().flatten().sum();
            assert_eq!(sum, 0, "{o:?} kernel must be zero-sum");
        }
    }

    #[test]
    fn bank_is_orientation_selective() {
        let mut bank = EdgeFilterBank::build(9, 6, 8).expect("compiles");
        for (i, orientation) in Orientation::ALL.into_iter().enumerate() {
            let frame = bar_frame(9, orientation);
            let energy = bank.orientation_energy(&frame);
            let best = energy
                .iter()
                .enumerate()
                .max_by_key(|&(_, &e)| e)
                .map(|(k, _)| k)
                .unwrap();
            assert_eq!(
                best, i,
                "bar {orientation:?} → energies {energy:?} (expected peak at {i})"
            );
        }
    }

    #[test]
    fn blank_frame_is_silent() {
        let mut bank = EdgeFilterBank::build(7, 6, 8).expect("compiles");
        let blank = Frame::new(7, 7, vec![0.0; 49]);
        let energy = bank.orientation_energy(&blank);
        assert_eq!(energy, [0, 0, 0, 0]);
    }
}
