//! Reichardt-style motion detection: direction-selective correlation of
//! neighbouring photoreceptors through delay lines and coincidence gates.
//!
//! The classic neuromorphic kernel: for each pair of adjacent pixels
//! `(p, p+1)`, a rightward detector correlates *delayed* `p` with *direct*
//! `p+1` (an edge moving right arrives at `p` first), and a leftward
//! detector the mirror image. Population votes over the detector rows give
//! the perceived direction. Built entirely from the corelet standard
//! library (delay lines + coincidence gates) composed with `embed`.

use brainsim_compiler::{compile, CompileError, CompileOptions, CompiledNetwork};
use brainsim_corelet::{library, Corelet, NodeRef};

/// Perceived motion direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Stimulus sweeping toward larger pixel indices.
    Rightward,
    /// Stimulus sweeping toward smaller pixel indices.
    Leftward,
    /// No clear winner.
    Ambiguous,
}

/// A compiled 1-D motion detector over `pixels` photoreceptors.
#[derive(Debug)]
pub struct MotionDetector {
    compiled: CompiledNetwork,
    pairs: usize,
}

impl MotionDetector {
    /// Builds the detector array. `lag` is the pixel-to-pixel sweep delay
    /// the detectors are tuned to (1–6 ticks).
    ///
    /// # Errors
    ///
    /// Propagates compiler errors.
    ///
    /// # Panics
    ///
    /// Panics if `pixels < 2` or `lag` outside `1..=6`.
    pub fn build(pixels: usize, lag: u32) -> Result<MotionDetector, CompileError> {
        assert!(pixels >= 2, "need at least two photoreceptors");
        assert!((1..=6).contains(&lag), "lag must be 1..=6");
        let mut top = Corelet::new("motion-detector", pixels);
        let pairs = pixels - 1;
        for p in 0..pairs {
            // Rightward detector: delayed(p) AND direct(p+1).
            let delayed = library::delay_line(lag).expect("valid delay");
            let d = top.embed(&delayed, &[NodeRef::Input(p)]).expect("embed");
            let gate = library::coincidence(2);
            // The direct branch needs a matching relay latency (the delay
            // line adds `lag` plus its own 0-tick relay fire; the direct
            // input reaches the gate through its synapse alone), so tune
            // the gate wiring: delayed branch from the delay line's output
            // neuron, direct branch straight from the input port.
            let g = top
                .embed(&gate, &[NodeRef::Neuron(d[0]), NodeRef::Input(p + 1)])
                .expect("embed");
            top.mark_output(g[0]).expect("output");

            // Leftward detector: delayed(p+1) AND direct(p).
            let delayed_l = library::delay_line(lag).expect("valid delay");
            let dl = top
                .embed(&delayed_l, &[NodeRef::Input(p + 1)])
                .expect("embed");
            let gate_l = library::coincidence(2);
            let gl = top
                .embed(&gate_l, &[NodeRef::Neuron(dl[0]), NodeRef::Input(p)])
                .expect("embed");
            top.mark_output(gl[0]).expect("output");
        }
        let compiled = compile(top.network(), &CompileOptions::default())?;
        Ok(MotionDetector { compiled, pairs })
    }

    /// The compiled network.
    pub fn compiled(&self) -> &CompiledNetwork {
        &self.compiled
    }

    /// Presents a bright edge sweeping across the array with the given
    /// per-pixel lag (positive = rightward) and returns the decoded
    /// direction plus the two detector-population counts.
    ///
    /// # Panics
    ///
    /// Panics if `|sweep_lag|` is outside `1..=6`.
    pub fn perceive(&mut self, sweep_lag: i32) -> (Direction, usize, usize) {
        assert!(
            (1..=6).contains(&sweep_lag.unsigned_abs()),
            "sweep lag 1..=6"
        );
        self.compiled.reset();
        let pixels = self.pairs + 1;
        let horizon = (pixels as u64) * sweep_lag.unsigned_abs() as u64 + 20;
        let mut right_votes = 0usize;
        let mut left_votes = 0usize;
        for t in 0..horizon {
            // A travelling flash: each photoreceptor fires once, in sweep
            // order, one every |sweep_lag| ticks.
            let lag = sweep_lag.unsigned_abs() as u64;
            let step = (t / lag) as usize;
            let active: Vec<usize> = if step < pixels && t % lag == 0 {
                let p = if sweep_lag > 0 {
                    step
                } else {
                    pixels - 1 - step
                };
                vec![p]
            } else {
                Vec::new()
            };
            for &p in &active {
                self.compiled.inject(p, t).expect("pixel port");
            }
            for (port, fired) in self.compiled.tick().into_iter().enumerate() {
                if fired {
                    if port % 2 == 0 {
                        right_votes += 1;
                    } else {
                        left_votes += 1;
                    }
                }
            }
        }
        let direction = if right_votes > left_votes {
            Direction::Rightward
        } else if left_votes > right_votes {
            Direction::Leftward
        } else {
            Direction::Ambiguous
        };
        (direction, right_votes, left_votes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_rightward_sweep() {
        let mut detector = MotionDetector::build(6, 3).expect("compiles");
        let (dir, right, left) = detector.perceive(3);
        assert_eq!(dir, Direction::Rightward, "votes R{right}/L{left}");
        assert!(
            right >= 3,
            "expected strong rightward response, got {right}"
        );
    }

    #[test]
    fn detects_leftward_sweep() {
        let mut detector = MotionDetector::build(6, 3).expect("compiles");
        let (dir, right, left) = detector.perceive(-3);
        assert_eq!(dir, Direction::Leftward, "votes R{right}/L{left}");
        assert!(left >= 3);
    }

    #[test]
    fn direction_selectivity_is_tuned_to_lag() {
        // A detector tuned to lag 2 should respond weakly to a lag-5 sweep.
        let mut detector = MotionDetector::build(6, 2).expect("compiles");
        let (_, tuned_right, _) = detector.perceive(2);
        let (_, detuned_right, _) = detector.perceive(5);
        assert!(
            tuned_right > detuned_right,
            "tuned {tuned_right} vs detuned {detuned_right}"
        );
    }
}
