//! Delay-line coincidence detection (sound-localisation kernel).
//!
//! A Jeffress-style delay-line array: two input channels (left/right ear),
//! one detector neuron per candidate inter-channel time difference (ITD).
//! Detector for ITD `Δ` receives the left channel delayed by `base + Δ`
//! and the right channel delayed by `base`; when the right event actually
//! lags the left by `Δ`, both arrive in the same tick and only that
//! detector crosses threshold. A fast decaying leak clears single-channel
//! residue between pulses.

use brainsim_compiler::{compile, CompileError, CompileOptions, CompiledNetwork};
use brainsim_corelet::{Corelet, NodeRef};
use brainsim_neuron::NeuronConfig;

/// A compiled ITD estimator.
#[derive(Debug)]
pub struct ItdEstimator {
    compiled: CompiledNetwork,
    max_itd: i32,
}

impl ItdEstimator {
    /// Builds an estimator for ITDs in `−max_itd..=max_itd` ticks.
    ///
    /// # Errors
    ///
    /// Propagates compiler errors.
    ///
    /// # Panics
    ///
    /// Panics if `max_itd` is 0 or larger than 6 (delay-line budget).
    pub fn build(max_itd: i32) -> Result<ItdEstimator, CompileError> {
        assert!((1..=6).contains(&max_itd), "max_itd must be in 1..=6");
        let base = (max_itd + 1) as u8;
        let mut corelet = Corelet::new("itd-estimator", 2);
        // Coincidence detector: two unit inputs, threshold 1 *after* a
        // decaying leak of 1 — a lone input (1 − 1 = 0) stays quiet, a
        // coincident pair (2 − 1 = 1) fires.
        let template = NeuronConfig::builder()
            .threshold(1)
            .leak(-1)
            .leak_reversal(true)
            .negative_threshold(0)
            .build()
            .expect("detector template is valid");
        for delta in -max_itd..=max_itd {
            let detector = corelet.add_neuron(template.clone());
            let left_delay = (base as i32 + delta) as u8;
            corelet
                .connect(NodeRef::Input(0), detector, 1, left_delay)
                .expect("left wiring valid");
            corelet
                .connect(NodeRef::Input(1), detector, 1, base)
                .expect("right wiring valid");
            corelet.mark_output(detector).expect("detector exists");
        }
        let compiled = compile(corelet.network(), &CompileOptions::default())?;
        Ok(ItdEstimator { compiled, max_itd })
    }

    /// The compiled network.
    pub fn compiled(&self) -> &CompiledNetwork {
        &self.compiled
    }

    /// Estimates the ITD of a pulse pair: left at relative tick 0, right at
    /// relative tick `itd` (may be negative). Returns the decoded ITD, or
    /// `None` if no detector fired.
    ///
    /// # Panics
    ///
    /// Panics if `|itd| > max_itd`.
    pub fn estimate(&mut self, itd: i32) -> Option<i32> {
        assert!(itd.abs() <= self.max_itd, "itd out of range");
        self.compiled.reset();
        let offset = self.max_itd; // shift so both pulses land at t ≥ 0
        let left_t = offset as u64;
        let right_t = (offset + itd) as u64;
        let mut counts = vec![0u32; (2 * self.max_itd + 1) as usize];
        let horizon = (3 * self.max_itd + 8) as u64;
        for t in 0..horizon {
            if t == left_t {
                self.compiled.inject(0, t).expect("left port");
            }
            if t == right_t {
                self.compiled.inject(1, t).expect("right port");
            }
            for (d, fired) in self.compiled.tick().into_iter().enumerate() {
                if fired {
                    counts[d] += 1;
                }
            }
        }
        counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .max_by_key(|&(_, &c)| c)
            .map(|(d, _)| d as i32 - self.max_itd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_every_itd_exactly() {
        let mut estimator = ItdEstimator::build(4).expect("compiles");
        for itd in -4..=4 {
            assert_eq!(
                estimator.estimate(itd),
                Some(itd),
                "failed to decode ITD {itd}"
            );
        }
    }

    #[test]
    fn detector_math_requires_coincidence() {
        // Only the matching detector fires; others stay quiet.
        let mut estimator = ItdEstimator::build(2).expect("compiles");
        // estimate() already asserts a unique argmax decodes correctly for
        // each ITD; spot-check the boundary values.
        assert_eq!(estimator.estimate(2), Some(2));
        assert_eq!(estimator.estimate(-2), Some(-2));
    }

    #[test]
    #[should_panic(expected = "itd out of range")]
    fn out_of_range_itd_panics() {
        let mut estimator = ItdEstimator::build(2).expect("compiles");
        let _ = estimator.estimate(3);
    }
}
