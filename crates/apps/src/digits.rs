//! The synthetic digit-glyph dataset.
//!
//! Ten 5×7 digit glyphs (the classic dot-matrix font) are upscaled to
//! 16×16 frames; samples are produced by jittering the glyph position by
//! up to ±1 pixel and flipping each pixel independently with a configurable
//! probability, all driven by the deterministic LFSR so datasets are
//! reproducible.

use brainsim_encoding::Frame;
use brainsim_neuron::Lfsr;

/// Frame side length.
pub const SIDE: usize = 16;
/// Pixels per frame.
pub const PIXELS: usize = SIDE * SIDE;
/// Number of classes.
pub const CLASSES: usize = 10;

/// 5×7 dot-matrix glyphs for digits 0–9 (row-major, `#` = on).
const GLYPHS: [[&str; 7]; 10] = [
    [
        " ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### ",
    ], // 0
    [
        "  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### ",
    ], // 1
    [
        " ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####",
    ], // 2
    [
        " ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### ",
    ], // 3
    [
        "   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # ",
    ], // 4
    [
        "#####", "#    ", "#### ", "    #", "    #", "#   #", " ### ",
    ], // 5
    [
        " ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### ",
    ], // 6
    [
        "#####", "    #", "   # ", "  #  ", " #   ", " #   ", " #   ",
    ], // 7
    [
        " ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### ",
    ], // 8
    [
        " ### ", "#   #", "#   #", " ####", "    #", "    #", " ### ",
    ], // 9
];

/// One labelled sample.
#[derive(Debug, Clone)]
pub struct Sample {
    /// The image.
    pub frame: Frame,
    /// The digit class, `0..10`.
    pub label: usize,
}

/// Renders the clean (noise-free) glyph of a digit, centred in the frame.
///
/// # Panics
///
/// Panics if `digit >= 10`.
pub fn glyph(digit: usize) -> Frame {
    render(digit, 0, 0, 0.0, &mut Lfsr::new(1))
}

fn render(digit: usize, dx: i32, dy: i32, flip_p: f64, rng: &mut Lfsr) -> Frame {
    assert!(digit < CLASSES, "digit out of range");
    // Upscale 5×7 → 10×14, centred in 16×16 with the jitter offset.
    let mut pixels = vec![0.0f64; PIXELS];
    let x0 = 3 + dx;
    let y0 = 1 + dy;
    for (gy, row) in GLYPHS[digit].iter().enumerate() {
        for (gx, ch) in row.chars().enumerate() {
            if ch == '#' {
                for sy in 0..2 {
                    for sx in 0..2 {
                        let x = x0 + (gx * 2 + sx) as i32;
                        let y = y0 + (gy * 2 + sy) as i32;
                        if (0..SIDE as i32).contains(&x) && (0..SIDE as i32).contains(&y) {
                            pixels[y as usize * SIDE + x as usize] = 1.0;
                        }
                    }
                }
            }
        }
    }
    if flip_p > 0.0 {
        let numerator = (flip_p * 256.0).round() as u32;
        for p in pixels.iter_mut() {
            if rng.bernoulli_256(numerator) {
                *p = 1.0 - *p;
            }
        }
    }
    Frame::new(SIDE, SIDE, pixels)
}

/// Generates `per_class` samples per digit with position jitter (±1 px) and
/// independent pixel flips with probability `noise`.
pub fn generate(per_class: usize, noise: f64, seed: u32) -> Vec<Sample> {
    let mut rng = Lfsr::new(seed);
    let mut samples = Vec::with_capacity(per_class * CLASSES);
    for digit in 0..CLASSES {
        for _ in 0..per_class {
            let dx = (rng.next_u32() % 3) as i32 - 1;
            let dy = (rng.next_u32() % 3) as i32 - 1;
            samples.push(Sample {
                frame: render(digit, dx, dy, noise, &mut rng),
                label: digit,
            });
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glyphs_are_distinct() {
        for a in 0..CLASSES {
            for b in (a + 1)..CLASSES {
                assert_ne!(
                    glyph(a).pixels(),
                    glyph(b).pixels(),
                    "glyphs {a} and {b} are identical"
                );
            }
        }
    }

    #[test]
    fn glyphs_have_reasonable_ink() {
        for d in 0..CLASSES {
            let ink: f64 = glyph(d).pixels().iter().sum();
            assert!((30.0..140.0).contains(&ink), "digit {d} has ink {ink}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(3, 0.05, 42);
        let b = generate(3, 0.05, 42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.frame.pixels(), y.frame.pixels());
            assert_eq!(x.label, y.label);
        }
    }

    #[test]
    fn noise_flips_roughly_expected_fraction() {
        let clean = generate(1, 0.0, 7);
        let noisy = generate(1, 0.1, 7);
        let mut diffs = 0usize;
        let mut total = 0usize;
        for (c, n) in clean.iter().zip(&noisy) {
            for (a, b) in c.frame.pixels().iter().zip(n.frame.pixels()) {
                // Jitter offsets differ between runs with different render
                // parameters, so compare only the flip statistics loosely.
                if (a - b).abs() > 0.5 {
                    diffs += 1;
                }
                total += 1;
            }
        }
        let fraction = diffs as f64 / total as f64;
        assert!(fraction > 0.02 && fraction < 0.5, "fraction {fraction}");
    }

    #[test]
    fn labels_cover_all_classes() {
        let data = generate(2, 0.0, 3);
        for d in 0..CLASSES {
            assert_eq!(data.iter().filter(|s| s.label == d).count(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "digit out of range")]
    fn bad_digit_panics() {
        let _ = glyph(10);
    }
}
