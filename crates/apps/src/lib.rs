//! # brainsim-apps
//!
//! Application kernels built on the full stack (encode → corelet →
//! compile → chip → decode), mirroring the application classes the
//! architecture's evaluation reports:
//!
//! * [`digits`] — a procedurally generated 16×16 digit-glyph dataset. The
//!   published evaluations use camera/MNIST-class data that is unavailable
//!   offline; the synthetic glyphs exercise the identical code path and
//!   preserve the accuracy *shape* (quantised-on-chip vs floating-point
//!   baseline), which is what table T2 reproduces.
//! * [`classifier`] — a rate-coded 10-class image classifier: perceptron
//!   training in floating point, 4-level weight quantisation onto the
//!   axon-type scheme, deployment to the chip, plus a floating-point LIF
//!   baseline (`brainsim-snn`) for the accuracy-gap measurement.
//! * [`edge`] — an orientation-selective 3×3 filter bank (saliency
//!   front-end), the canonical convolutional corelet.
//! * [`coincidence`] — a delay-line coincidence detector estimating the
//!   inter-channel time difference of paired pulses (sound-localisation
//!   kernel).
//! * [`deep`] — a two-layer network (random-feature expansion + trained
//!   readout) exercising multi-layer compilation.
//! * [`motion`] — a Reichardt direction-selective motion detector composed
//!   entirely from standard-library corelets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod classifier;
pub mod coincidence;
pub mod deep;
pub mod digits;
pub mod edge;
pub mod motion;
