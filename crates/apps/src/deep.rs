//! A two-layer chip classifier: random-projection feature detectors
//! feeding a trained readout layer.
//!
//! The canonical deployment pattern of the architecture: a fixed
//! random-feature layer (binary ±1 weights, cheap on a binary crossbar)
//! expands the input; only the small readout layer is trained, in floating
//! point, against the *emulated* feature rates, then quantised to the
//! 4-level axon-type scheme. This exercises the full compiler pipeline on
//! a multi-layer network: hidden-layer fan-out, inter-layer delays,
//! splitter insertion and multi-core placement.

use brainsim_compiler::{compile, CompileError, CompileOptions, CompiledNetwork};
use brainsim_corelet::{Corelet, NodeRef};
use brainsim_encoding::{Frame, FrameEncoder};
use brainsim_neuron::{Lfsr, NeuronConfig, ResetMode};

use crate::classifier::{argmax, quantize_row};
use crate::digits::{Sample, CLASSES, PIXELS};

/// Fixed random ±1 patch features, `features × pixels` (zero outside the
/// patch).
///
/// Each feature reads a random `patch × patch` receptive field rather than
/// the whole frame — the EEDN deployment style, and what keeps one core's
/// 256-axon budget shared across many features.
#[derive(Debug, Clone)]
pub struct FeatureBank {
    weights: Vec<Vec<i32>>,
    threshold: u32,
}

impl FeatureBank {
    /// Draws `features` random ±1 patch projections with a deterministic
    /// seed. `patch` is the receptive-field side (≤ 16); `threshold` is the
    /// feature neurons' firing threshold (linear reset).
    ///
    /// # Panics
    ///
    /// Panics if `patch` is zero or exceeds the frame side.
    pub fn random(features: usize, patch: usize, threshold: u32, seed: u32) -> FeatureBank {
        let side = (PIXELS as f64).sqrt() as usize;
        assert!(patch > 0 && patch <= side, "patch must be in 1..=16");
        let mut rng = Lfsr::new(seed);
        let weights = (0..features)
            .map(|_| {
                let ox = rng.next_u32() as usize % (side - patch + 1);
                let oy = rng.next_u32() as usize % (side - patch + 1);
                let mut row = vec![0i32; PIXELS];
                for py in 0..patch {
                    for px in 0..patch {
                        let p = (oy + py) * side + (ox + px);
                        row[p] = if rng.bernoulli_256(128) { 1 } else { -1 };
                    }
                }
                row
            })
            .collect();
        FeatureBank { weights, threshold }
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the bank is empty.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Emulated per-tick feature rates for a frame: the rectified projection
    /// scaled by the threshold, clipped to one spike per tick — exactly the
    /// steady-state rate the chip's linear-reset neuron produces under rate
    /// coding.
    pub fn rates(&self, frame: &Frame) -> Vec<f64> {
        self.weights
            .iter()
            .map(|row| {
                let drive: f64 = row
                    .iter()
                    .zip(frame.pixels())
                    .map(|(&w, &x)| w as f64 * x)
                    .sum();
                (drive / self.threshold as f64).clamp(0.0, 1.0)
            })
            .collect()
    }
}

/// Trains readout weights on emulated feature rates (averaged perceptron).
pub fn train_readout(bank: &FeatureBank, train: &[Sample], epochs: usize) -> Vec<Vec<f64>> {
    let features: Vec<(Vec<f64>, usize)> = train
        .iter()
        .map(|s| (bank.rates(&s.frame), s.label))
        .collect();
    let f = bank.len();
    let mut weights = vec![vec![0.0f64; f]; CLASSES];
    let mut sum = vec![vec![0.0f64; f]; CLASSES];
    for _ in 0..epochs {
        for (x, label) in &features {
            let scores: Vec<f64> = weights
                .iter()
                .map(|row| row.iter().zip(x).map(|(w, v)| w * v).sum())
                .collect();
            let prediction = argmax(&scores);
            if prediction != *label {
                for (k, &v) in x.iter().enumerate() {
                    weights[*label][k] += v;
                    weights[prediction][k] -= v;
                }
            }
            for (avg_row, w_row) in sum.iter_mut().zip(&weights) {
                for (a, &w) in avg_row.iter_mut().zip(w_row) {
                    *a += w;
                }
            }
        }
    }
    let steps = (epochs * features.len()).max(1) as f64;
    for row in sum.iter_mut() {
        for a in row.iter_mut() {
            *a /= steps;
        }
    }
    sum
}

/// The two-layer network deployed on the chip.
#[derive(Debug)]
pub struct DeepClassifier {
    compiled: CompiledNetwork,
    window: usize,
}

impl DeepClassifier {
    /// Builds and compiles the two-layer network.
    ///
    /// # Errors
    ///
    /// Propagates compiler errors.
    pub fn build(
        bank: &FeatureBank,
        readout: &[Vec<f64>],
        readout_threshold: u32,
        window: usize,
    ) -> Result<DeepClassifier, CompileError> {
        let mut corelet = Corelet::new("deep-classifier", PIXELS);
        let feature_template = NeuronConfig::builder()
            .threshold(bank.threshold)
            .reset_mode(ResetMode::Linear)
            .negative_threshold(0)
            .build()
            .expect("feature template valid");
        let readout_template = NeuronConfig::builder()
            .threshold(readout_threshold)
            .reset_mode(ResetMode::Linear)
            .build()
            .expect("readout template valid");

        let features = corelet.add_population(feature_template, bank.len());
        for (fi, row) in bank.weights.iter().enumerate() {
            for (pixel, &w) in row.iter().enumerate() {
                if w != 0 {
                    corelet
                        .connect(NodeRef::Input(pixel), features[fi], w, 1)
                        .expect("feature wiring valid");
                }
            }
        }
        let outputs = corelet.add_population(readout_template, CLASSES);
        let quantized: Vec<Vec<i32>> = readout.iter().map(|row| quantize_row(row, 32)).collect();
        for (class, row) in quantized.iter().enumerate() {
            for (fi, &w) in row.iter().enumerate() {
                if w != 0 {
                    // Delay 4 leaves headroom for both a core-splitter hop
                    // and a weight-role relay hop on the feature fan-out.
                    corelet
                        .connect(NodeRef::Neuron(features[fi]), outputs[class], w, 4)
                        .expect("readout wiring valid");
                }
            }
        }
        for &o in &outputs {
            corelet.mark_output(o).expect("output exists");
        }
        let compiled = compile(corelet.network(), &CompileOptions::default())?;
        Ok(DeepClassifier { compiled, window })
    }

    /// The compiled network.
    pub fn compiled(&self) -> &CompiledNetwork {
        &self.compiled
    }

    /// Classifies one frame by output spike counts.
    pub fn classify(&mut self, frame: &Frame) -> usize {
        self.compiled.reset();
        let encoder = FrameEncoder::new(frame, self.window);
        let mut counts = [0usize; CLASSES];
        for t in 0..(self.window as u64 + 8) {
            if t < self.window as u64 {
                for (pixel, &s) in encoder.tick_spikes(t as usize).iter().enumerate() {
                    if s {
                        self.compiled.inject(pixel, t).expect("pixel port exists");
                    }
                }
            }
            for (class, fired) in self.compiled.tick().into_iter().enumerate() {
                if fired {
                    counts[class] += 1;
                }
            }
        }
        counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Accuracy over a test set.
    pub fn accuracy(&mut self, test: &[Sample]) -> f64 {
        let correct = test
            .iter()
            .filter(|s| self.classify(&s.frame) == s.label)
            .count();
        correct as f64 / test.len().max(1) as f64
    }
}

/// Float reference: accuracy of the readout on emulated feature rates.
pub fn float_feature_accuracy(bank: &FeatureBank, readout: &[Vec<f64>], test: &[Sample]) -> f64 {
    let correct = test
        .iter()
        .filter(|s| {
            let x = bank.rates(&s.frame);
            let scores: Vec<f64> = readout
                .iter()
                .map(|row| row.iter().zip(&x).map(|(w, v)| w * v).sum())
                .collect();
            argmax(&scores) == s.label
        })
        .count();
    correct as f64 / test.len().max(1) as f64
}

/// Suggests the readout threshold: mean positive correct-class drive per
/// tick over the training features.
pub fn suggest_readout_threshold(
    bank: &FeatureBank,
    readout: &[Vec<f64>],
    train: &[Sample],
) -> u32 {
    let quantized: Vec<Vec<i32>> = readout.iter().map(|row| quantize_row(row, 32)).collect();
    let mut total = 0.0;
    let mut n = 0usize;
    for s in train.iter().take(50) {
        let x = bank.rates(&s.frame);
        let drive: f64 = quantized[s.label]
            .iter()
            .zip(&x)
            .map(|(&w, v)| w as f64 * v)
            .sum();
        if drive > 0.0 {
            total += drive;
            n += 1;
        }
    }
    if n == 0 {
        1
    } else {
        (total / n as f64).max(1.0).round() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digits;

    #[test]
    fn feature_bank_is_deterministic_and_balanced() {
        let a = FeatureBank::random(16, 8, 16, 9);
        let b = FeatureBank::random(16, 8, 16, 9);
        assert_eq!(a.weights, b.weights);
        let nonzero: Vec<i32> = a
            .weights
            .iter()
            .flatten()
            .copied()
            .filter(|&w| w != 0)
            .collect();
        assert_eq!(nonzero.len(), 16 * 64, "each feature covers its 8x8 patch");
        let positives = nonzero.iter().filter(|&&w| w == 1).count();
        let fraction = positives as f64 / nonzero.len() as f64;
        assert!((fraction - 0.5).abs() < 0.07, "fraction {fraction}");
    }

    #[test]
    fn rates_are_clipped_to_unit() {
        let bank = FeatureBank::random(8, 8, 10, 5);
        let frame = digits::glyph(3);
        for r in bank.rates(&frame) {
            assert!((0.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn deep_classifier_beats_chance_on_chip() {
        let train = digits::generate(15, 0.02, 41);
        let test = digits::generate(3, 0.05, 77);
        let bank = FeatureBank::random(80, 8, 8, 13);
        let readout = train_readout(&bank, &train, 25);
        let float_acc = float_feature_accuracy(&bank, &readout, &test);
        let threshold = suggest_readout_threshold(&bank, &readout, &train);
        let mut deep = DeepClassifier::build(&bank, &readout, threshold, 24).expect("compiles");
        let chip_acc = deep.accuracy(&test);
        assert!(float_acc > 0.55, "float feature accuracy {float_acc}");
        assert!(chip_acc > 0.35, "chip accuracy {chip_acc}");
        assert!(
            deep.compiled().report().cores >= 2,
            "two-layer net should span cores"
        );
    }
}
