//! Typed refusals: admission control and per-submit backpressure.

use std::fmt;

use brainsim_chip::SaveError;

/// Why [`crate::Fleet::admit`] refused a tenant.
#[derive(Debug)]
pub enum AdmitError {
    /// The tenant name is empty, too long, or contains characters outside
    /// `[A-Za-z0-9_-]` (names become on-disk directory names).
    InvalidTenant(String),
    /// A live session already holds this name.
    DuplicateTenant(String),
    /// The fleet is at its admission cap.
    FleetFull {
        /// The configured cap.
        max_tenants: usize,
    },
    /// The fleet is shutting down and admits no new tenants.
    ShuttingDown,
    /// The genesis checkpoint could not be written, so the session would
    /// have no recovery floor; the tenant is not admitted.
    Checkpoint(SaveError),
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::InvalidTenant(name) => {
                write!(
                    f,
                    "invalid tenant name {name:?} (want [A-Za-z0-9_-], 1..=64 chars)"
                )
            }
            AdmitError::DuplicateTenant(name) => write!(f, "tenant {name:?} already admitted"),
            AdmitError::FleetFull { max_tenants } => {
                write!(f, "fleet full ({max_tenants} tenants)")
            }
            AdmitError::ShuttingDown => write!(f, "fleet is shutting down"),
            AdmitError::Checkpoint(e) => write!(f, "genesis checkpoint failed: {e}"),
        }
    }
}

impl std::error::Error for AdmitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AdmitError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SaveError> for AdmitError {
    fn from(e: SaveError) -> Self {
        AdmitError::Checkpoint(e)
    }
}

/// Why [`crate::Fleet::submit`] refused an injection. Every variant is
/// backpressure the client is expected to handle: slow down, retry later,
/// or give up on the session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The fleet is shutting down; queues are draining, not filling.
    ShuttingDown,
    /// No live session holds this name.
    TenantUnknown(String),
    /// The session is quarantined for blowing its deadline budget; it is
    /// not being ticked, so its queue is frozen too.
    Quarantined {
        /// First round at which the session leaves quarantine.
        until_round: u64,
    },
    /// The session is terminally failed; its state was exported and it
    /// will never tick again.
    SessionFailed,
    /// Fleet-wide shed-load is active: the total backlog crossed the high
    /// watermark and has not yet drained below the low watermark.
    Overloaded {
        /// Queued injections across the fleet when this submit arrived.
        backlog: usize,
        /// The low watermark the backlog must drain to.
        watermark: usize,
    },
    /// This tenant's own bounded queue is full.
    QueueFull {
        /// The configured per-tenant queue capacity.
        capacity: usize,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::ShuttingDown => write!(f, "fleet is shutting down"),
            SubmitError::TenantUnknown(name) => write!(f, "unknown tenant {name:?}"),
            SubmitError::Quarantined { until_round } => {
                write!(f, "session quarantined until round {until_round}")
            }
            SubmitError::SessionFailed => write!(f, "session terminally failed"),
            SubmitError::Overloaded { backlog, watermark } => write!(
                f,
                "fleet shedding load: backlog {backlog} must drain to {watermark}"
            ),
            SubmitError::QueueFull { capacity } => {
                write!(f, "tenant queue full ({capacity} entries)")
            }
        }
    }
}

impl std::error::Error for SubmitError {}
