//! # brainsim-serve
//!
//! A supervised multi-tenant serving runtime for the simulator: N tenant
//! sessions — each an independently owned [`brainsim_chip::Chip`] —
//! multiplexed over M worker threads in discrete scheduling rounds, under
//! one supervisor enforcing admission control, deadline budgets,
//! fleet-wide backpressure, and crash-isolated recovery.
//!
//! The paper's chip multiplexes thousands of neurons onto shared
//! silicon under a hard real-time tick; this crate reproduces that
//! discipline one level up, where the *simulator* is the shared silicon
//! and tenants are the workloads:
//!
//! * **Admission** — [`Fleet::admit`] caps live tenants, validates names
//!   (they become on-disk state directories), and writes a genesis
//!   checkpoint so every session has a recovery floor from tick 0.
//! * **Backpressure** — each tenant submits [`InjectCmd`]s into a
//!   bounded queue ([`SubmitError::QueueFull`]); a fleet-wide backlog
//!   watermark sheds load with hysteresis
//!   ([`SubmitError::Overloaded`]). Refusal is always typed — clients
//!   are told *why* and what to wait for.
//! * **Deadlines** — every driven tick is metered against a
//!   [`BudgetMeter`]. The deterministic cost meter
//!   (`cores_evaluated + spikes`, both invariant across thread counts)
//!   makes demotion → quarantine decisions bit-identical on every host;
//!   the wall-clock meter serves production. Hysteresis streaks guard
//!   every lane move.
//! * **Crash isolation** — a core panic inside one tenant's chip is
//!   contained by [`brainsim_chip::Chip::try_tick`], journaled, and
//!   healed by restoring the newest verifying BSNP checkpoint (walking
//!   past corrupt files) and replaying the session's logged injections,
//!   under a capped-exponential [`brainsim_recovery::BackoffLadder`].
//!   Other tenants never miss a tick and stay bit-identical to solo
//!   runs; a ladder that exhausts yields a typed, terminal
//!   [`SessionState::Failed`].
//! * **Metering** — per-tenant [`SessionMetrics`] plus the chip's own
//!   [`brainsim_telemetry::RunSummary`] are exported in a
//!   [`TenantReport`] on eviction and shutdown.
//!
//! Determinism is the load-bearing property, inherited from the chip and
//! preserved by construction: the coordinator plans each round in slot
//! order, workers drive disjoint sessions, and outcomes are re-sorted by
//! slot before any supervision decision is applied — so the full event
//! journal is invariant across `workers ∈ {1, 2, 8, …}`.
//! `tests/serve.rs` proves it differentially, under chaos.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod config;
mod error;
mod fleet;
mod session;

pub use config::{BudgetMeter, DeadlinePolicy, ServeConfig};
pub use error::{AdmitError, SubmitError};
pub use fleet::{Fleet, FleetEvent, RoundReport, SessionView, TenantReport};
pub use session::{InjectCmd, Lane, SessionFailure, SessionMetrics, SessionState};

// The ladder vocabulary the config speaks, re-exported so serving
// callers need only this crate.
pub use brainsim_recovery::BackoffLadder;
