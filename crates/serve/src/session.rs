//! One tenant's session: a chip it owns, a bounded inject queue, a
//! deadline lane, and the per-tenant accounting the fleet exports.

use std::collections::VecDeque;
use std::time::Instant;

use brainsim_chip::{Chip, Steppable};

use crate::config::BudgetMeter;

/// One queued word injection: axons `word*64 + set bits` of core
/// `(x, y)` receive an event for `target_tick`.
///
/// Commands queue until the session's chip reaches `target_tick`, are
/// applied just before that tick evaluates (the `target == now` idiom),
/// and are logged so crash recovery can replay them against an older
/// checkpoint bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectCmd {
    /// Target core column.
    pub x: usize,
    /// Target core row.
    pub y: usize,
    /// 64-axon word index within the core.
    pub word: usize,
    /// Set bits select axons `word*64 + bit`.
    pub bits: u64,
    /// The tick the events are scheduled for.
    pub target_tick: u64,
}

/// Which service lane a session is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Full service rate (`ticks_per_round`).
    Healthy,
    /// Demoted rate (`degraded_ticks_per_round`) after repeated deadline
    /// misses, or on probation after quarantine / crash recovery.
    Degraded,
}

/// A terminal session failure: recovery exhausted its ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionFailure {
    /// The chip tick the session died at.
    pub tick: u64,
    /// Recovery attempts made before giving up.
    pub attempts: u32,
    /// Rendered reason from the final attempt.
    pub reason: String,
}

/// Where a session is in its lifecycle (the public view).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionState {
    /// Live in the healthy lane.
    Running,
    /// Live in the degraded lane.
    Degraded,
    /// Sitting out; not ticked until `until_round`.
    Quarantined {
        /// First round at which the session re-enters the degraded lane.
        until_round: u64,
    },
    /// Crashed; waiting on the recovery ladder.
    Recovering {
        /// Failed recovery attempts so far.
        attempts: u32,
        /// Round of the next attempt.
        next_attempt_round: u64,
    },
    /// Terminally failed; will never tick again.
    Failed(SessionFailure),
}

/// Internal lifecycle mode (the fleet's working state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Mode {
    Live,
    Quarantined { until_round: u64 },
    Recovering { next_attempt_round: u64 },
    Failed(SessionFailure),
}

/// Per-tenant counters, exported in every report and view. All counters
/// are cumulative over the session's life (recovery does not reset them —
/// a restored chip replays ticks, and those replayed ticks are counted
/// again, exactly as the work was re-done).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionMetrics {
    /// Ticks driven (including ticks replayed after recovery).
    pub ticks: u64,
    /// Spikes produced.
    pub spikes: u64,
    /// External output events.
    pub outputs: u64,
    /// Deterministic work: Σ (cores_evaluated + spikes) per tick.
    pub cost_units: u64,
    /// Wall nanoseconds spent inside `try_tick` for this session.
    pub wall_nanos: u64,
    /// Deepest the inject queue ever got.
    pub queue_peak: u64,
    /// Queued commands dropped because their target tick had passed.
    pub stale_dropped: u64,
    /// Commands the chip refused at application time (bad core/axon).
    pub inject_rejected: u64,
    /// Ticks that blew the per-tick budget.
    pub deadline_misses: u64,
    /// Healthy→Degraded lane demotions.
    pub demotions: u64,
    /// Degraded→Healthy lane promotions.
    pub promotions: u64,
    /// Times quarantined.
    pub quarantines: u64,
    /// Core panics contained by the supervisor.
    pub panics: u64,
    /// Successful crash recoveries.
    pub recoveries: u64,
    /// Logged injections re-queued for replay across all recoveries.
    pub replayed_injections: u64,
    /// Corrupt/unreadable checkpoint files skipped during restores.
    pub corrupt_checkpoints_skipped: u64,
    /// Checkpoint writes that exhausted their retry budget.
    pub checkpoint_failures: u64,
    /// Checkpoints successfully written.
    pub checkpoints_written: u64,
}

/// The tick plan a worker executes for one session in one round.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RoundPlan {
    pub ticks: u64,
    pub budget: BudgetMeter,
}

/// What one worker's drive of one session produced.
#[derive(Debug, Default)]
pub(crate) struct DriveOutcome {
    pub ticks_done: u64,
    pub over_budget_ticks: u64,
    /// Rendered panic, if the chip died mid-round. The tick did not
    /// complete and the chip is poisoned; the supervisor must recover it.
    pub panic: Option<String>,
}

pub(crate) struct Session {
    pub tenant: String,
    pub chip: Chip,
    /// Bounded inject queue, kept sorted by `target_tick` (stable for
    /// equal ticks, preserving submission order).
    pub queue: VecDeque<InjectCmd>,
    pub lane: Lane,
    pub mode: Mode,
    /// Consecutive rounds with ≥ 1 budget miss.
    pub miss_streak: u32,
    /// Consecutive rounds with zero misses.
    pub clean_streak: u32,
    /// Failed attempts in the *current* recovery episode.
    pub recovery_attempts: u32,
    /// Running FNV-1a checksum over `(tick, outputs)` — the session's
    /// externally observable history, used by the differential tests and
    /// carried in every checkpoint's application section.
    pub checksum: u64,
    /// Injections applied since the oldest retained checkpoint, in
    /// application order; replayed on restore.
    pub inject_log: Vec<InjectCmd>,
    pub last_checkpoint_tick: u64,
    pub metrics: SessionMetrics,
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Folds bytes into a running 64-bit FNV-1a hash (the quickstart's fold,
/// so serve checksums and quickstart checksums are directly comparable).
fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Folds one tick's observable output into `hash`.
pub(crate) fn fold_tick(hash: &mut u64, tick: u64, outputs: &[u32]) {
    fnv1a(hash, &tick.to_le_bytes());
    for port in outputs {
        fnv1a(hash, &port.to_le_bytes());
    }
}

impl Session {
    pub(crate) fn new(tenant: String, chip: Chip) -> Session {
        Session {
            tenant,
            chip,
            queue: VecDeque::new(),
            lane: Lane::Healthy,
            mode: Mode::Live,
            miss_streak: 0,
            clean_streak: 0,
            recovery_attempts: 0,
            checksum: FNV_OFFSET,
            inject_log: Vec::new(),
            last_checkpoint_tick: 0,
            metrics: SessionMetrics::default(),
        }
    }

    /// The public view of the internal mode + lane pair.
    pub(crate) fn state(&self) -> SessionState {
        match &self.mode {
            Mode::Live => match self.lane {
                Lane::Healthy => SessionState::Running,
                Lane::Degraded => SessionState::Degraded,
            },
            Mode::Quarantined { until_round } => SessionState::Quarantined {
                until_round: *until_round,
            },
            Mode::Recovering { next_attempt_round } => SessionState::Recovering {
                attempts: self.recovery_attempts,
                next_attempt_round: *next_attempt_round,
            },
            Mode::Failed(failure) => SessionState::Failed(failure.clone()),
        }
    }

    /// Inserts `cmd` keeping the queue sorted by `target_tick`, stable
    /// for equal ticks. Capacity is the caller's concern.
    pub(crate) fn enqueue(&mut self, cmd: InjectCmd) {
        let at = self
            .queue
            .iter()
            .rposition(|q| q.target_tick <= cmd.target_tick)
            .map(|i| i + 1)
            .unwrap_or(0);
        self.queue.insert(at, cmd);
        self.metrics.queue_peak = self.metrics.queue_peak.max(self.queue.len() as u64);
    }

    /// Drives the session's chip for one round: per tick, applies every
    /// queued command that has come due, evaluates the tick through the
    /// [`Steppable`] seam, folds the checksum, and meters the tick
    /// against the plan's budget. Stops early on a contained core panic.
    pub(crate) fn drive(&mut self, plan: &RoundPlan) -> DriveOutcome {
        let mut out = DriveOutcome::default();
        let Session {
            chip,
            queue,
            inject_log,
            checksum,
            metrics,
            ..
        } = self;
        let stepper: &mut dyn Steppable = chip;
        for _ in 0..plan.ticks {
            let now = stepper.now();
            while queue.front().is_some_and(|front| front.target_tick <= now) {
                let Some(cmd) = queue.pop_front() else { break };
                if cmd.target_tick < now {
                    metrics.stale_dropped += 1;
                    continue;
                }
                match stepper.inject_word(cmd.x, cmd.y, cmd.word, cmd.bits, cmd.target_tick) {
                    Ok(()) => inject_log.push(cmd),
                    Err(_) => metrics.inject_rejected += 1,
                }
            }
            let started = Instant::now();
            match stepper.try_tick() {
                Ok(summary) => {
                    let wall = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    let cost = summary.cores_evaluated + summary.spikes;
                    metrics.ticks += 1;
                    metrics.spikes += summary.spikes;
                    metrics.outputs += summary.outputs.len() as u64;
                    metrics.cost_units += cost;
                    metrics.wall_nanos += wall;
                    fold_tick(checksum, summary.tick, &summary.outputs);
                    out.ticks_done += 1;
                    if plan.budget.exceeded(cost, wall) {
                        out.over_budget_ticks += 1;
                    }
                }
                Err(e) => {
                    out.panic = Some(e.to_string());
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brainsim_chip::{ChipBuilder, ChipConfig};
    use brainsim_core::Destination;
    use brainsim_neuron::{AxonType, NeuronConfig, Weight};

    fn relay_chip() -> Chip {
        let mut builder = ChipBuilder::new(ChipConfig {
            width: 1,
            height: 1,
            core_axons: 8,
            core_neurons: 8,
            ..ChipConfig::default()
        });
        let relay = NeuronConfig::builder()
            .weight(AxonType::A0, Weight::saturating(1))
            .threshold(1)
            .build()
            .expect("cfg");
        builder
            .core_mut(0, 0)
            .neuron(0, relay, Destination::Output(7))
            .expect("neuron");
        builder.core_mut(0, 0).synapse(0, 0, true).expect("synapse");
        builder.build().expect("build")
    }

    #[test]
    fn enqueue_keeps_target_order_stably() {
        let mut s = Session::new("t".into(), relay_chip());
        for (word, tick) in [(3, 9), (1, 5), (2, 5), (4, 1)] {
            s.enqueue(InjectCmd {
                x: 0,
                y: 0,
                word,
                bits: 1,
                target_tick: tick,
            });
        }
        let order: Vec<(usize, u64)> = s.queue.iter().map(|c| (c.word, c.target_tick)).collect();
        assert_eq!(order, vec![(4, 1), (1, 5), (2, 5), (3, 9)]);
        assert_eq!(s.metrics.queue_peak, 4);
    }

    #[test]
    fn drive_applies_due_commands_and_drops_stale_ones() {
        let mut s = Session::new("t".into(), relay_chip());
        // Due at tick 1 → relay fires, output port 7 at tick 1.
        s.enqueue(InjectCmd {
            x: 0,
            y: 0,
            word: 0,
            bits: 1,
            target_tick: 1,
        });
        // Bad word index → rejected at application time.
        s.enqueue(InjectCmd {
            x: 0,
            y: 0,
            word: 99,
            bits: 1,
            target_tick: 1,
        });
        let out = s.drive(&RoundPlan {
            ticks: 4,
            budget: BudgetMeter::Unlimited,
        });
        assert_eq!(out.ticks_done, 4);
        assert!(out.panic.is_none());
        assert_eq!(s.metrics.outputs, 1);
        assert_eq!(s.metrics.inject_rejected, 1);
        assert_eq!(s.inject_log.len(), 1);

        // A command whose tick already passed is dropped as stale.
        s.enqueue(InjectCmd {
            x: 0,
            y: 0,
            word: 0,
            bits: 1,
            target_tick: 2,
        });
        let _ = s.drive(&RoundPlan {
            ticks: 1,
            budget: BudgetMeter::Unlimited,
        });
        assert_eq!(s.metrics.stale_dropped, 1);

        // Checksum matches an independently driven twin.
        let mut twin = relay_chip();
        let mut expect = FNV_OFFSET;
        twin.inject_word(0, 0, 0, 1, 1).expect("inject");
        for _ in 0..5 {
            let summary = twin.tick();
            fold_tick(&mut expect, summary.tick, &summary.outputs);
        }
        assert_eq!(s.checksum, expect);
    }

    #[test]
    fn cost_budget_marks_over_budget_ticks() {
        let mut s = Session::new("t".into(), relay_chip());
        s.enqueue(InjectCmd {
            x: 0,
            y: 0,
            word: 0,
            bits: 1,
            target_tick: 1,
        });
        // Tick 1 evaluates a core and fires: cost ≥ 2 blows a 0-unit
        // budget; fully quiescent ticks cost 0 and pass.
        let out = s.drive(&RoundPlan {
            ticks: 3,
            budget: BudgetMeter::CostUnitsPerTick(0),
        });
        assert_eq!(out.ticks_done, 3);
        assert!(out.over_budget_ticks >= 1);
        assert!(out.over_budget_ticks < 3);
        assert!(s.metrics.cost_units > 0);
    }
}
