//! Fleet sizing, per-round tick plans, deadline policy, recovery ladder,
//! and checkpoint cadence.

use brainsim_chip::RetryPolicy;
use brainsim_recovery::BackoffLadder;

/// The per-tick execution budget a session is held to.
///
/// Two meters are offered because deadline enforcement has two masters:
/// production wants wall time, tests and capacity planning want
/// reproducibility. The cost-unit meter charges
/// `cores_evaluated + spikes` per tick — both deterministic functions of
/// the workload (invariant across thread counts and schedulers) — so a
/// fleet metered in cost units makes bit-identical demotion, quarantine
/// and shed decisions on every host, which is how `tests/serve.rs` pins
/// the policy differentially.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetMeter {
    /// No deadline: a tick can never miss.
    Unlimited,
    /// Wall-clock nanoseconds per tick (production meter; host-dependent,
    /// so decisions driven by it are not reproducible across machines).
    WallNanosPerTick(u64),
    /// Deterministic work units per tick: a tick costs
    /// `cores_evaluated + spikes` from its
    /// [`brainsim_chip::TickSummary`].
    CostUnitsPerTick(u64),
}

impl BudgetMeter {
    /// Did a tick that cost `cost_units` / `wall_nanos` blow the budget?
    pub fn exceeded(&self, cost_units: u64, wall_nanos: u64) -> bool {
        match *self {
            BudgetMeter::Unlimited => false,
            BudgetMeter::WallNanosPerTick(limit) => wall_nanos > limit,
            BudgetMeter::CostUnitsPerTick(limit) => cost_units > limit,
        }
    }
}

/// How deadline misses demote, promote, and quarantine a session.
///
/// All thresholds count *consecutive* rounds (hysteresis): one slow round
/// never demotes, one fast round never promotes, so lane assignments don't
/// flap on transient load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlinePolicy {
    /// The per-tick budget every driven tick is checked against.
    pub budget: BudgetMeter,
    /// Consecutive missed rounds before a healthy session is demoted to
    /// the degraded lane.
    pub demote_after: u32,
    /// Consecutive clean rounds before a degraded session is promoted
    /// back to the healthy lane.
    pub promote_after: u32,
    /// Consecutive missed rounds, *while already degraded*, before the
    /// session is quarantined (not ticked at all).
    pub quarantine_after: u32,
    /// Rounds a quarantined session sits out before re-entering the
    /// degraded lane on probation.
    pub quarantine_rounds: u64,
}

impl Default for DeadlinePolicy {
    /// No budget (never misses); demote after 2, promote after 4,
    /// quarantine after 3 further misses for 16 rounds.
    fn default() -> Self {
        DeadlinePolicy {
            budget: BudgetMeter::Unlimited,
            demote_after: 2,
            promote_after: 4,
            quarantine_after: 3,
            quarantine_rounds: 16,
        }
    }
}

/// Complete serving-runtime configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads driving sessions each round (clamped to ≥ 1; also
    /// clamped to the number of driveable sessions). Scheduling decisions
    /// are bit-identical at any worker count.
    pub workers: usize,
    /// Admission cap: concurrent tenants the fleet will hold.
    pub max_tenants: usize,
    /// Bounded depth of each tenant's inject queue; a submit beyond it is
    /// refused with `SubmitError::QueueFull`.
    pub queue_capacity: usize,
    /// Ticks a healthy-lane session is driven per round.
    pub ticks_per_round: u64,
    /// Ticks a degraded-lane session is driven per round (the demoted
    /// service rate; must be < `ticks_per_round` to mean anything).
    pub degraded_ticks_per_round: u64,
    /// Fleet-wide queued-injection count at which shedding starts: all
    /// further submits are refused with `SubmitError::Overloaded`.
    pub shed_high_watermark: usize,
    /// Backlog at or below which shedding stops (hysteresis: strictly
    /// less than the high watermark, or shedding flaps per submit).
    pub shed_low_watermark: usize,
    /// Deadline enforcement policy.
    pub deadline: DeadlinePolicy,
    /// Crash-recovery retry ladder, measured in rounds.
    pub recovery: BackoffLadder,
    /// Ticks between per-tenant checkpoints.
    pub checkpoint_every: u64,
    /// Checkpoint files retained per tenant (≥ 2 buys corruption
    /// fallback).
    pub checkpoint_keep: usize,
    /// Retry budget for each checkpoint write.
    pub checkpoint_retry: RetryPolicy,
}

impl Default for ServeConfig {
    /// 2 workers, 64 tenants, 256-deep queues, 8 ticks per round (1 when
    /// degraded), shed at 1024 / resume at 512 queued injections, default
    /// deadline policy, 4 recovery attempts backing off 2→16 rounds,
    /// checkpoint every 50 ticks keeping 3.
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            max_tenants: 64,
            queue_capacity: 256,
            ticks_per_round: 8,
            degraded_ticks_per_round: 1,
            shed_high_watermark: 1024,
            shed_low_watermark: 512,
            deadline: DeadlinePolicy::default(),
            recovery: BackoffLadder::new(2, 16, 4),
            checkpoint_every: 50,
            checkpoint_keep: 3,
            checkpoint_retry: RetryPolicy::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_meters() {
        assert!(!BudgetMeter::Unlimited.exceeded(u64::MAX, u64::MAX));
        let wall = BudgetMeter::WallNanosPerTick(100);
        assert!(!wall.exceeded(u64::MAX, 100));
        assert!(wall.exceeded(0, 101));
        let cost = BudgetMeter::CostUnitsPerTick(60);
        assert!(!cost.exceeded(60, u64::MAX));
        assert!(cost.exceeded(61, 0));
    }
}
