//! The fleet supervisor: admission, round scheduling over a worker pool,
//! deadline enforcement, shed-load, and crash-isolated recovery.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use brainsim_chip::{CheckpointPolicy, Chip, SaveError, Snapshot, TelemetryConfig};
use brainsim_telemetry::RunSummary;

use crate::config::{BudgetMeter, ServeConfig};
use crate::error::{AdmitError, SubmitError};
use crate::session::{
    DriveOutcome, InjectCmd, Lane, Mode, RoundPlan, Session, SessionFailure, SessionMetrics,
    SessionState,
};

/// One supervision decision, in the order the fleet made it. Events are
/// a deterministic function of the workload under a deterministic
/// [`BudgetMeter`]: the same admits + submits produce the same event
/// stream at any worker count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetEvent {
    /// A tenant was admitted (`resumed_from` carries the checkpoint tick
    /// when the session was restored from disk).
    Admitted {
        /// Round of the decision.
        round: u64,
        /// The tenant.
        tenant: String,
        /// Checkpoint tick the session resumed from, if any.
        resumed_from: Option<u64>,
    },
    /// A tenant was evicted and its report exported.
    Evicted {
        /// Round of the decision.
        round: u64,
        /// The tenant.
        tenant: String,
    },
    /// Healthy → degraded lane after consecutive deadline misses.
    Demoted {
        /// Round of the decision.
        round: u64,
        /// The tenant.
        tenant: String,
    },
    /// Degraded → healthy lane after consecutive clean rounds.
    Promoted {
        /// Round of the decision.
        round: u64,
        /// The tenant.
        tenant: String,
    },
    /// Degraded and still missing: the session sits out.
    Quarantined {
        /// Round of the decision.
        round: u64,
        /// The tenant.
        tenant: String,
        /// First round at which the session re-enters service.
        until_round: u64,
    },
    /// Quarantine expired; back to the degraded lane on probation.
    Unquarantined {
        /// Round of the decision.
        round: u64,
        /// The tenant.
        tenant: String,
    },
    /// A core panic was contained; the session enters recovery.
    SessionPanicked {
        /// Round of the decision.
        round: u64,
        /// The tenant.
        tenant: String,
        /// Chip tick at which the panic surfaced.
        tick: u64,
        /// Rendered panic message.
        message: String,
    },
    /// A corrupt or unreadable checkpoint was skipped during a restore.
    CorruptCheckpointSkipped {
        /// Round of the decision.
        round: u64,
        /// The tenant.
        tenant: String,
        /// Tick encoded in the skipped file's name.
        tick: u64,
        /// Rendered [`brainsim_chip::SnapshotIoError`].
        error: String,
    },
    /// One recovery attempt failed; the ladder scheduled another.
    RecoveryAttemptFailed {
        /// Round of the decision.
        round: u64,
        /// The tenant.
        tenant: String,
        /// 1-based attempt number.
        attempt: u32,
        /// Rendered reason.
        reason: String,
        /// Round of the next attempt.
        retry_round: u64,
    },
    /// The session was restored from a checkpoint and its logged
    /// injections replayed.
    Recovered {
        /// Round of the decision.
        round: u64,
        /// The tenant.
        tenant: String,
        /// Checkpoint tick restored from.
        from_tick: u64,
        /// Logged injections re-queued for replay.
        replayed: u64,
        /// Corrupt checkpoints skipped on the way to the winner.
        corrupt_skipped: u64,
    },
    /// The recovery ladder is exhausted: the session is terminally dead.
    SessionFailed {
        /// Round of the decision.
        round: u64,
        /// The tenant.
        tenant: String,
        /// The terminal failure record.
        failure: SessionFailure,
    },
    /// A checkpoint write exhausted its retry budget (the session lives
    /// on; its recovery floor just didn't advance).
    CheckpointFailed {
        /// Round of the decision.
        round: u64,
        /// The tenant.
        tenant: String,
        /// Chip tick of the attempted checkpoint.
        tick: u64,
        /// Rendered [`SaveError`].
        error: String,
    },
    /// The fleet backlog crossed the high watermark: submits are refused
    /// until it drains.
    SheddingStarted {
        /// Round of the decision.
        round: u64,
        /// Fleet-wide queued injections at the crossing.
        backlog: usize,
    },
    /// The backlog drained to the low watermark: submits resume.
    SheddingStopped {
        /// Round of the decision.
        round: u64,
        /// Fleet-wide queued injections at the crossing.
        backlog: usize,
    },
}

/// A read-only view of one session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionView {
    /// The tenant.
    pub tenant: String,
    /// Lifecycle state.
    pub state: SessionState,
    /// Chip ticks completed.
    pub ticks: u64,
    /// Running FNV-1a checksum over `(tick, outputs)`.
    pub checksum: u64,
    /// Currently queued injections.
    pub queue_len: usize,
    /// Cumulative counters.
    pub metrics: SessionMetrics,
}

/// The exported record of a tenant leaving the fleet (eviction or
/// shutdown): final state, observable checksum, metering, and — when the
/// chip carried telemetry — its [`RunSummary`].
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// The tenant.
    pub tenant: String,
    /// Lifecycle state at export.
    pub state: SessionState,
    /// Chip ticks completed.
    pub ticks: u64,
    /// Final FNV-1a checksum over `(tick, outputs)`.
    pub checksum: u64,
    /// Cumulative counters.
    pub metrics: SessionMetrics,
    /// The chip's run-level telemetry summary, if telemetry was enabled.
    pub summary: Option<RunSummary>,
}

/// What one [`Fleet::run_round`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundReport {
    /// The round that ran (pre-increment).
    pub round: u64,
    /// Sessions driven this round.
    pub driven: usize,
    /// Ticks completed across all driven sessions.
    pub ticks: u64,
    /// Core panics contained this round.
    pub panics: usize,
    /// Fleet-wide queued injections after the round.
    pub backlog: usize,
    /// Whether shed-load is active after the round.
    pub shedding: bool,
}

/// The multi-tenant serving runtime: N tenant sessions multiplexed over
/// M worker threads in discrete rounds, under one supervisor enforcing
/// admission, deadlines, backpressure, and crash isolation. See the
/// crate docs for the full model.
pub struct Fleet {
    config: ServeConfig,
    state_dir: PathBuf,
    /// Slot-indexed sessions; slots are never reused, so a slot index
    /// identifies one tenant for the fleet's whole life.
    sessions: Vec<Option<Session>>,
    index: HashMap<String, usize>,
    round: u64,
    queued_total: usize,
    shedding: bool,
    shutting_down: bool,
    events: Vec<FleetEvent>,
}

/// `true` when `name` is usable as a tenant id and an on-disk directory
/// name: 1..=64 chars from `[A-Za-z0-9_-]`.
fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Decodes the checksum a checkpoint's application section carries;
/// a missing/foreign section reads as the FNV offset basis (fresh).
fn checksum_from_app(app: &[u8]) -> u64 {
    <[u8; 8]>::try_from(app)
        .map(u64::from_le_bytes)
        .unwrap_or(0xCBF2_9CE4_8422_2325)
}

impl Fleet {
    /// An empty fleet persisting per-tenant checkpoints under
    /// `state_dir/<tenant>/`.
    pub fn new(config: ServeConfig, state_dir: impl Into<PathBuf>) -> Fleet {
        Fleet {
            config,
            state_dir: state_dir.into(),
            sessions: Vec::new(),
            index: HashMap::new(),
            round: 0,
            queued_total: 0,
            shedding: false,
            shutting_down: false,
            events: Vec::new(),
        }
    }

    /// The scheduling round counter (rounds completed).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Live tenant names, in admission (slot) order.
    pub fn tenants(&self) -> Vec<String> {
        self.sessions
            .iter()
            .flatten()
            .map(|s| s.tenant.clone())
            .collect()
    }

    /// Fleet-wide queued injections.
    pub fn backlog(&self) -> usize {
        self.queued_total
    }

    /// Whether shed-load is currently refusing submits.
    pub fn shedding(&self) -> bool {
        self.shedding
    }

    /// Drains and returns the supervision journal accumulated since the
    /// last call, oldest first.
    pub fn drain_events(&mut self) -> Vec<FleetEvent> {
        std::mem::take(&mut self.events)
    }

    fn tenant_dir(&self, tenant: &str) -> PathBuf {
        self.state_dir.join(tenant)
    }

    /// Admits `tenant` running `chip`. Enables run-level telemetry on the
    /// chip (counters only) if none is configured, and writes the genesis
    /// checkpoint — the floor every later recovery can fall back to.
    ///
    /// # Errors
    ///
    /// [`AdmitError`] — invalid/duplicate name, fleet full, shutting
    /// down, or an unwritable genesis checkpoint.
    pub fn admit(&mut self, tenant: &str, chip: Chip) -> Result<(), AdmitError> {
        self.admit_inner(tenant, chip, None)
    }

    /// [`Fleet::admit`], but first tries to restore the tenant's newest
    /// verifying checkpoint from its state directory; `fallback_chip` is
    /// used only when no checkpoint verifies. Corrupt checkpoints skipped
    /// on the way are metered and journaled exactly as during crash
    /// recovery.
    ///
    /// # Errors
    ///
    /// As for [`Fleet::admit`].
    pub fn resume(&mut self, tenant: &str, fallback_chip: Chip) -> Result<(), AdmitError> {
        if !valid_tenant(tenant) {
            return Err(AdmitError::InvalidTenant(tenant.to_string()));
        }
        let dir = self.tenant_dir(tenant);
        let (skips, restored) = restore_from_dir(&dir);
        let round = self.round;
        let mut skip_events = Vec::new();
        let mut skipped = 0u64;
        for skip in &skips {
            skipped += 1;
            skip_events.push(FleetEvent::CorruptCheckpointSkipped {
                round,
                tenant: tenant.to_string(),
                tick: skip.tick,
                error: skip.error.to_string(),
            });
        }
        let (chip, checksum, resumed_from) = match restored {
            Ok((tick, chip, checksum)) => (chip, Some(checksum), Some(tick)),
            Err(_) => (fallback_chip, None, None),
        };
        let result = self.admit_inner(tenant, chip, resumed_from);
        if result.is_ok() {
            self.events.extend(skip_events);
            if let Some(slot) = self.index.get(tenant).copied() {
                if let Some(session) = self.sessions[slot].as_mut() {
                    session.metrics.corrupt_checkpoints_skipped += skipped;
                    if let Some(checksum) = checksum {
                        session.checksum = checksum;
                    }
                    if let Some(tick) = resumed_from {
                        session.last_checkpoint_tick = tick;
                        // Resuming re-enters service on probation.
                        session.lane = Lane::Degraded;
                    }
                }
            }
        }
        result
    }

    fn admit_inner(
        &mut self,
        tenant: &str,
        mut chip: Chip,
        resumed_from: Option<u64>,
    ) -> Result<(), AdmitError> {
        if self.shutting_down {
            return Err(AdmitError::ShuttingDown);
        }
        if !valid_tenant(tenant) {
            return Err(AdmitError::InvalidTenant(tenant.to_string()));
        }
        if self.index.contains_key(tenant) {
            return Err(AdmitError::DuplicateTenant(tenant.to_string()));
        }
        if self.index.len() >= self.config.max_tenants {
            return Err(AdmitError::FleetFull {
                max_tenants: self.config.max_tenants,
            });
        }
        if chip.telemetry().is_none() {
            chip.enable_telemetry(TelemetryConfig::counters_only(1));
        }
        let mut session = Session::new(tenant.to_string(), chip);
        if resumed_from.is_none() {
            // The genesis checkpoint: without it a crash before the first
            // cadence checkpoint would have nothing to restore.
            write_checkpoint(&self.config, &self.tenant_dir(tenant), &mut session)?;
        }
        let slot = self.sessions.len();
        self.sessions.push(Some(session));
        self.index.insert(tenant.to_string(), slot);
        self.events.push(FleetEvent::Admitted {
            round: self.round,
            tenant: tenant.to_string(),
            resumed_from,
        });
        Ok(())
    }

    /// Queues one word injection for `tenant`, subject to backpressure.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] — unknown tenant, quarantined or failed session,
    /// fleet-wide shed-load, or a full per-tenant queue.
    pub fn submit(&mut self, tenant: &str, cmd: InjectCmd) -> Result<(), SubmitError> {
        if self.shutting_down {
            return Err(SubmitError::ShuttingDown);
        }
        let Some(&slot) = self.index.get(tenant) else {
            return Err(SubmitError::TenantUnknown(tenant.to_string()));
        };
        if self.shedding {
            return Err(SubmitError::Overloaded {
                backlog: self.queued_total,
                watermark: self.config.shed_low_watermark,
            });
        }
        let capacity = self.config.queue_capacity;
        let high = self.config.shed_high_watermark;
        let Some(session) = self.sessions[slot].as_mut() else {
            return Err(SubmitError::TenantUnknown(tenant.to_string()));
        };
        match &session.mode {
            Mode::Failed(_) => return Err(SubmitError::SessionFailed),
            Mode::Quarantined { until_round } => {
                return Err(SubmitError::Quarantined {
                    until_round: *until_round,
                })
            }
            Mode::Live | Mode::Recovering { .. } => {}
        }
        if session.queue.len() >= capacity {
            return Err(SubmitError::QueueFull { capacity });
        }
        session.enqueue(cmd);
        self.queued_total += 1;
        if !self.shedding && self.queued_total >= high {
            self.shedding = true;
            self.events.push(FleetEvent::SheddingStarted {
                round: self.round,
                backlog: self.queued_total,
            });
        }
        Ok(())
    }

    /// A read-only view of `tenant`'s session.
    pub fn session(&self, tenant: &str) -> Option<SessionView> {
        let slot = *self.index.get(tenant)?;
        let session = self.sessions[slot].as_ref()?;
        Some(SessionView {
            tenant: session.tenant.clone(),
            state: session.state(),
            ticks: session.chip.now(),
            checksum: session.checksum,
            queue_len: session.queue.len(),
            metrics: session.metrics,
        })
    }

    /// Runs one scheduling round: expires quarantines, retries due
    /// recoveries, drives every live session for its lane's tick quota on
    /// the worker pool, applies deadline/panic transitions in slot order,
    /// and takes due checkpoints. Scheduling decisions are bit-identical
    /// at any worker count.
    pub fn run_round(&mut self) -> RoundReport {
        let round = self.round;

        // Phase 1 — lifecycle transitions due this round, in slot order.
        for slot in 0..self.sessions.len() {
            let Some(session) = self.sessions[slot].as_mut() else {
                continue;
            };
            match session.mode.clone() {
                Mode::Quarantined { until_round } if round >= until_round => {
                    session.mode = Mode::Live;
                    session.lane = Lane::Degraded;
                    session.miss_streak = 0;
                    session.clean_streak = 0;
                    let tenant = session.tenant.clone();
                    self.events
                        .push(FleetEvent::Unquarantined { round, tenant });
                }
                Mode::Recovering { next_attempt_round } if round >= next_attempt_round => {
                    self.try_recover(slot);
                }
                _ => {}
            }
        }

        // Phase 2 — plan: which slots tick, and for how long.
        let budget = self.config.deadline.budget;
        let mut work: Vec<(usize, RoundPlan, &mut Session)> = Vec::new();
        for (slot, entry) in self.sessions.iter_mut().enumerate() {
            let Some(session) = entry.as_mut() else {
                continue;
            };
            if !matches!(session.mode, Mode::Live) {
                continue;
            }
            let ticks = match session.lane {
                Lane::Healthy => self.config.ticks_per_round,
                Lane::Degraded => self.config.degraded_ticks_per_round,
            };
            if ticks == 0 {
                continue;
            }
            work.push((slot, RoundPlan { ticks, budget }, session));
        }
        let scheduled: Vec<usize> = work.iter().map(|(slot, _, _)| *slot).collect();

        // Phase 3 — drive on the worker pool. Workers hold disjoint
        // `&mut Session`s; outcomes are re-sorted by slot so everything
        // downstream is order-independent of worker interleaving.
        let workers = self.config.workers.max(1).min(work.len().max(1));
        let mut outcomes: Vec<(usize, DriveOutcome)> = if workers <= 1 {
            work.into_iter()
                .map(|(slot, plan, session)| (slot, session.drive(&plan)))
                .collect()
        } else {
            let mut buckets: Vec<Vec<(usize, RoundPlan, &mut Session)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (i, item) in work.into_iter().enumerate() {
                buckets[i % workers].push(item);
            }
            std::thread::scope(|scope| {
                let handles: Vec<_> = buckets
                    .into_iter()
                    .map(|bucket| {
                        scope.spawn(move || {
                            bucket
                                .into_iter()
                                .map(|(slot, plan, session)| (slot, session.drive(&plan)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|handle| handle.join().unwrap_or_default())
                    .collect()
            })
        };
        outcomes.sort_by_key(|(slot, _)| *slot);
        // A worker thread that died took its whole bucket's outcomes with
        // it; every scheduled-but-unreported slot is treated as panicked
        // so supervision still reaches it.
        for &slot in &scheduled {
            if outcomes.binary_search_by_key(&slot, |(s, _)| *s).is_err() {
                let synthesized = DriveOutcome {
                    panic: Some("worker thread crashed".to_string()),
                    ..DriveOutcome::default()
                };
                let at = outcomes.partition_point(|(s, _)| *s < slot);
                outcomes.insert(at, (slot, synthesized));
            }
        }

        // Phase 4 — apply outcomes in slot order.
        let mut driven = 0usize;
        let mut ticks_total = 0u64;
        let mut panics = 0usize;
        for (slot, outcome) in outcomes {
            driven += 1;
            ticks_total += outcome.ticks_done;
            if let Some(message) = outcome.panic {
                panics += 1;
                let Some(session) = self.sessions[slot].as_mut() else {
                    continue;
                };
                session.metrics.panics += 1;
                session.recovery_attempts = 0;
                session.mode = Mode::Recovering {
                    next_attempt_round: round,
                };
                let tenant = session.tenant.clone();
                let tick = session.chip.now();
                self.events.push(FleetEvent::SessionPanicked {
                    round,
                    tenant,
                    tick,
                    message,
                });
                self.try_recover(slot);
                continue;
            }
            self.apply_deadline(slot, &outcome);
            self.checkpoint_if_due(slot);
        }

        // Phase 5 — recompute backlog; shed-load hysteresis.
        self.queued_total = self
            .sessions
            .iter()
            .flatten()
            .filter(|s| !matches!(s.mode, Mode::Failed(_)))
            .map(|s| s.queue.len())
            .sum();
        if self.shedding && self.queued_total <= self.config.shed_low_watermark {
            self.shedding = false;
            self.events.push(FleetEvent::SheddingStopped {
                round,
                backlog: self.queued_total,
            });
        }
        self.round += 1;
        RoundReport {
            round,
            driven,
            ticks: ticks_total,
            panics,
            backlog: self.queued_total,
            shedding: self.shedding,
        }
    }

    /// Deadline bookkeeping for one driven session: streaks, lane moves,
    /// quarantine.
    fn apply_deadline(&mut self, slot: usize, outcome: &DriveOutcome) {
        let round = self.round;
        let policy = self.config.deadline;
        if matches!(policy.budget, BudgetMeter::Unlimited) || outcome.ticks_done == 0 {
            return;
        }
        let Some(session) = self.sessions[slot].as_mut() else {
            return;
        };
        session.metrics.deadline_misses += outcome.over_budget_ticks;
        let missed = outcome.over_budget_ticks > 0;
        if missed {
            session.miss_streak += 1;
            session.clean_streak = 0;
        } else {
            session.clean_streak += 1;
            session.miss_streak = 0;
        }
        let tenant = session.tenant.clone();
        match session.lane {
            Lane::Healthy if session.miss_streak >= policy.demote_after => {
                session.lane = Lane::Degraded;
                session.miss_streak = 0;
                session.clean_streak = 0;
                session.metrics.demotions += 1;
                self.events.push(FleetEvent::Demoted { round, tenant });
            }
            Lane::Degraded if session.miss_streak >= policy.quarantine_after => {
                let until_round = round + policy.quarantine_rounds.max(1);
                session.mode = Mode::Quarantined { until_round };
                session.miss_streak = 0;
                session.clean_streak = 0;
                session.metrics.quarantines += 1;
                self.events.push(FleetEvent::Quarantined {
                    round,
                    tenant,
                    until_round,
                });
            }
            Lane::Degraded if session.clean_streak >= policy.promote_after => {
                session.lane = Lane::Healthy;
                session.miss_streak = 0;
                session.clean_streak = 0;
                session.metrics.promotions += 1;
                self.events.push(FleetEvent::Promoted { round, tenant });
            }
            _ => {}
        }
    }

    /// Writes a cadence checkpoint when one is due. A failed write is
    /// metered and journaled, not fatal: the session runs on and the next
    /// due tick tries again.
    fn checkpoint_if_due(&mut self, slot: usize) {
        let round = self.round;
        let every = self.config.checkpoint_every.max(1);
        let dir;
        let due;
        {
            let Some(session) = self.sessions[slot].as_ref() else {
                return;
            };
            if !matches!(session.mode, Mode::Live) {
                return;
            }
            due = session
                .chip
                .now()
                .saturating_sub(session.last_checkpoint_tick)
                >= every;
            dir = self.tenant_dir(&session.tenant);
        }
        if !due {
            return;
        }
        let config = self.config.clone();
        let Some(session) = self.sessions[slot].as_mut() else {
            return;
        };
        if let Err(e) = write_checkpoint(&config, &dir, session) {
            session.metrics.checkpoint_failures += 1;
            let tenant = session.tenant.clone();
            let tick = session.chip.now();
            self.events.push(FleetEvent::CheckpointFailed {
                round,
                tenant,
                tick,
                error: e.to_string(),
            });
        }
    }

    /// One recovery attempt for a crashed session: restore the newest
    /// verifying checkpoint, replay logged injections past its tick, and
    /// return to service on probation — or climb the backoff ladder, or
    /// declare the session terminally failed.
    fn try_recover(&mut self, slot: usize) {
        let round = self.round;
        let ladder = self.config.recovery;
        let (dir, tenant) = {
            let Some(session) = self.sessions[slot].as_ref() else {
                return;
            };
            (self.tenant_dir(&session.tenant), session.tenant.clone())
        };
        let (skips, restored) = restore_from_dir(&dir);
        let Some(session) = self.sessions[slot].as_mut() else {
            return;
        };
        session.recovery_attempts += 1;
        let attempts = session.recovery_attempts;
        session.metrics.corrupt_checkpoints_skipped += skips.len() as u64;
        for skip in &skips {
            self.events.push(FleetEvent::CorruptCheckpointSkipped {
                round,
                tenant: tenant.clone(),
                tick: skip.tick,
                error: skip.error.to_string(),
            });
        }
        let Some(session) = self.sessions[slot].as_mut() else {
            return;
        };
        match restored {
            Ok((tick, chip, checksum)) => {
                session.chip = chip;
                session.checksum = checksum;
                session.last_checkpoint_tick = tick;
                // Entries applied after the checkpoint must be re-applied
                // at their original ticks: they go back to the queue
                // *front* (their targets precede everything still queued)
                // and drop out of the log (re-logged on application). A
                // checkpoint taken at tick `t` precedes the injections
                // *targeting* `t` (they apply at the start of the next
                // driven tick), so the replay window is `target ≥ t`.
                let mut replayed = 0u64;
                for cmd in session
                    .inject_log
                    .iter()
                    .filter(|cmd| cmd.target_tick >= tick)
                    .rev()
                {
                    session.queue.push_front(*cmd);
                    replayed += 1;
                }
                session.inject_log.retain(|cmd| cmd.target_tick < tick);
                session.metrics.replayed_injections += replayed;
                session.metrics.recoveries += 1;
                session.mode = Mode::Live;
                session.lane = Lane::Degraded;
                session.miss_streak = 0;
                session.clean_streak = 0;
                session.recovery_attempts = 0;
                self.events.push(FleetEvent::Recovered {
                    round,
                    tenant,
                    from_tick: tick,
                    replayed,
                    corrupt_skipped: skips.len() as u64,
                });
            }
            Err(reason) => match ladder.delay_after(attempts) {
                Some(delay) => {
                    let retry_round = round + delay;
                    session.mode = Mode::Recovering {
                        next_attempt_round: retry_round,
                    };
                    self.events.push(FleetEvent::RecoveryAttemptFailed {
                        round,
                        tenant,
                        attempt: attempts,
                        reason,
                        retry_round,
                    });
                }
                None => {
                    let failure = SessionFailure {
                        tick: session.chip.now(),
                        attempts,
                        reason,
                    };
                    session.mode = Mode::Failed(failure.clone());
                    session.queue.clear();
                    self.events.push(FleetEvent::SessionFailed {
                        round,
                        tenant,
                        failure,
                    });
                }
            },
        }
    }

    /// Evicts `tenant`, exporting its final report (with the chip's
    /// [`RunSummary`] when telemetry was enabled). Returns `None` for an
    /// unknown tenant.
    pub fn evict(&mut self, tenant: &str) -> Option<TenantReport> {
        let slot = self.index.remove(tenant)?;
        let mut session = self.sessions[slot].take()?;
        self.queued_total = self.queued_total.saturating_sub(session.queue.len());
        let summary = session
            .chip
            .take_telemetry()
            .map(|log| log.summary().clone());
        self.events.push(FleetEvent::Evicted {
            round: self.round,
            tenant: tenant.to_string(),
        });
        Some(TenantReport {
            tenant: session.tenant.clone(),
            state: session.state(),
            ticks: session.chip.now(),
            checksum: session.checksum,
            metrics: session.metrics,
            summary,
        })
    }

    /// Stops admissions and submissions; rounds may still run to drain
    /// queues before [`Fleet::shutdown`].
    pub fn begin_shutdown(&mut self) {
        self.shutting_down = true;
    }

    /// Final checkpoint for every live session (best effort), then evicts
    /// everything, returning the reports in admission order.
    pub fn shutdown(mut self) -> Vec<TenantReport> {
        self.shutting_down = true;
        let config = self.config.clone();
        for slot in 0..self.sessions.len() {
            let dir = match self.sessions[slot].as_ref() {
                Some(session) if matches!(session.mode, Mode::Live) => {
                    self.tenant_dir(&session.tenant)
                }
                _ => continue,
            };
            if let Some(session) = self.sessions[slot].as_mut() {
                if session.chip.now() > session.last_checkpoint_tick {
                    if let Err(e) = write_checkpoint(&config, &dir, session) {
                        session.metrics.checkpoint_failures += 1;
                        let tenant = session.tenant.clone();
                        let tick = session.chip.now();
                        self.events.push(FleetEvent::CheckpointFailed {
                            round: self.round,
                            tenant,
                            tick,
                            error: e.to_string(),
                        });
                    }
                }
            }
        }
        let tenants = self.tenants();
        tenants
            .iter()
            .filter_map(|tenant| self.evict(tenant))
            .collect()
    }

    /// Chaos hook: desynchronises one core of `tenant`'s chip so its next
    /// evaluated tick panics (contained by the supervisor). Returns
    /// `false` for an unknown tenant or out-of-range core. Test-fleet
    /// only — this is the serving-level twin of
    /// [`Chip::chaos_desync_core`].
    pub fn chaos_poison_core(&mut self, tenant: &str, core: usize) -> bool {
        let Some(&slot) = self.index.get(tenant) else {
            return false;
        };
        let Some(session) = self.sessions[slot].as_mut() else {
            return false;
        };
        session.chip.chaos_desync_core(core)
    }

    /// The on-disk checkpoint directory for `tenant` (exists after the
    /// genesis checkpoint).
    pub fn tenant_state_dir(&self, tenant: &str) -> PathBuf {
        self.tenant_dir(tenant)
    }
}

/// Writes a checkpoint carrying the session's running checksum in the
/// application section, then prunes the inject log to the oldest retained
/// checkpoint — entries older than every restore floor can never replay.
fn write_checkpoint(
    config: &ServeConfig,
    dir: &Path,
    session: &mut Session,
) -> Result<(), SaveError> {
    let mut snapshot = session.chip.checkpoint();
    snapshot.app = session.checksum.to_le_bytes().to_vec();
    let policy = CheckpointPolicy::new(config.checkpoint_every, config.checkpoint_keep);
    policy.save_with_retry(
        dir,
        session.chip.now(),
        &snapshot.to_bytes(),
        &config.checkpoint_retry,
    )?;
    session.last_checkpoint_tick = session.chip.now();
    session.metrics.checkpoints_written += 1;
    if let Ok(list) = CheckpointPolicy::list(dir) {
        if let Some(&(oldest, _)) = list.first() {
            // Entries targeting the oldest retained tick itself are kept:
            // a checkpoint at tick `t` is taken before tick `t`'s
            // injections apply, so restoring it replays `target ≥ t`.
            session.inject_log.retain(|cmd| cmd.target_tick >= oldest);
        }
    }
    Ok(())
}

/// Restores the newest verifying checkpoint in `dir`: the audit trail of
/// skipped files plus either `(tick, chip, checksum)` or a rendered
/// reason nothing was restorable.
#[allow(clippy::type_complexity)]
fn restore_from_dir(
    dir: &Path,
) -> (
    Vec<brainsim_chip::SkippedCheckpoint>,
    Result<(u64, Chip, u64), String>,
) {
    let (found, skips) = match CheckpointPolicy::load_newest_verifying_with_skips(dir) {
        Ok(v) => v,
        Err(e) => return (Vec::new(), Err(format!("checkpoint scan failed: {e}"))),
    };
    let Some((tick, bytes)) = found else {
        return (skips, Err("no verifying checkpoint on disk".to_string()));
    };
    let snapshot = match Snapshot::from_bytes(&bytes) {
        Ok(s) => s,
        Err(e) => return (skips, Err(format!("snapshot decode failed: {e}"))),
    };
    let checksum = checksum_from_app(&snapshot.app);
    match Chip::restore(snapshot) {
        Ok(chip) => (skips, Ok((tick, chip, checksum))),
        Err(e) => (skips, Err(format!("chip restore failed: {e}"))),
    }
}
