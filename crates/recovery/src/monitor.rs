//! Telemetry-driven health detection: which cores look broken, judged
//! from the per-tick record stream alone.
//!
//! The monitor never peeks at the fault plan — it sees exactly what a
//! production health daemon would see: per-core activity counters and the
//! chip-level per-tick fault deltas. Detection is therefore symptomatic:
//! a core that consumes axon events but never fires is *silent*, one that
//! fires without input is *stuck*, one whose scheduler backlog only grows
//! is *congested*. Each detector needs `trip` consecutive suspicious
//! ticks before condemning (hysteresis), and a chip-wide cooldown after a
//! condemnation wave keeps one detection storm from condemning half the
//! grid before the planner has had a chance to react.
//!
//! Determinism: all state lives in flat per-core vectors indexed by the
//! canonical row-major core index, and a core absent from a record's
//! activity list (skipped as provably quiescent by active-core
//! scheduling) is treated as all-zero — exactly what a full sweep reports
//! for it — so the monitor's verdicts are bit-identical across thread
//! counts and schedulers.

use serde::{Deserialize, Serialize};

use brainsim_telemetry::TickRecord;

/// Thresholds for the four runtime fault detectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Consecutive ticks a core must consume axon events yet fire nothing
    /// before it is condemned as silent (dead neurons, dropped core).
    /// Idle ticks hold the streak; any spike resets it.
    pub silent_trip: u32,
    /// Consecutive ticks a core must fire without consuming any input
    /// before it is condemned as stuck-firing. Any input-driven tick or
    /// fully idle tick resets the streak.
    pub stuck_trip: u32,
    /// Consecutive ticks of strictly growing scheduler backlog before a
    /// core is condemned as congested.
    pub backlog_window: u32,
    /// Minimum total backlog growth over the window; filters slow drift
    /// from genuine runaway congestion.
    pub backlog_min_growth: u32,
    /// Per-tick dropped-delivery count (packets dropped, flits lost to
    /// overflow, failed deliveries) at or above which the tick counts as a
    /// link-loss strike.
    pub link_loss_threshold: u64,
    /// Consecutive link-loss strikes before the chip-level link alarm is
    /// raised.
    pub link_loss_trip: u32,
    /// Ticks after a condemnation wave during which no further cell is
    /// condemned — gives the planner one coherent defect set per wave.
    pub cooldown_ticks: u32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            silent_trip: 8,
            stuck_trip: 8,
            backlog_window: 16,
            backlog_min_growth: 64,
            link_loss_threshold: 1,
            link_loss_trip: 16,
            cooldown_ticks: 32,
        }
    }
}

/// What one observed tick concluded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// Cells condemned by this tick's observation (empty on healthy
    /// ticks). Already deduplicated against earlier condemnations.
    pub condemned: Vec<(usize, usize)>,
    /// True when the link-loss detector tripped this tick.
    pub link_alarm: bool,
}

impl HealthReport {
    /// True when this tick raised nothing.
    pub fn is_healthy(&self) -> bool {
        self.condemned.is_empty() && !self.link_alarm
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct CoreStrikes {
    silent: u32,
    stuck: u32,
    backlog_rising: u32,
    backlog_growth: u64,
    last_pending: u32,
}

/// The runtime health monitor: feed it each tick's [`TickRecord`], read
/// back condemned cells.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    config: DetectorConfig,
    width: usize,
    strikes: Vec<CoreStrikes>,
    condemned: Vec<bool>,
    link_strikes: u32,
    link_alarmed: bool,
    cooldown_until: u64,
}

impl HealthMonitor {
    /// A monitor for a `width × height` chip.
    pub fn new(config: DetectorConfig, width: usize, height: usize) -> HealthMonitor {
        HealthMonitor {
            config,
            width,
            strikes: vec![CoreStrikes::default(); width * height],
            condemned: vec![false; width * height],
            link_strikes: 0,
            link_alarmed: false,
            cooldown_until: 0,
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Every cell condemned so far, in row-major order.
    pub fn condemned_cells(&self) -> Vec<(usize, usize)> {
        self.condemned
            .iter()
            .enumerate()
            .filter(|(_, &c)| c)
            .map(|(idx, _)| (idx % self.width, idx / self.width))
            .collect()
    }

    /// True once the link-loss alarm has tripped.
    pub fn link_alarmed(&self) -> bool {
        self.link_alarmed
    }

    /// Clears every detector streak (not the condemnation marks). Call
    /// after a successful migration: the chip's activity pattern changes
    /// discontinuously, and pre-migration streaks must not condemn the
    /// repaired layout.
    pub fn reset_strikes(&mut self) {
        for s in &mut self.strikes {
            *s = CoreStrikes::default();
        }
        self.link_strikes = 0;
    }

    /// Observes one tick's record and reports anything newly condemned.
    ///
    /// Records must arrive in tick order; per-core detail must be enabled
    /// in the telemetry config (without it the per-core detectors see only
    /// zeros and the monitor can only raise the link alarm).
    pub fn observe(&mut self, record: &TickRecord) -> HealthReport {
        // Per-core detectors. `record.cores` lists evaluated cores in
        // ascending core order; absent cores were provably quiescent and
        // count as all-zero.
        let mut entries = record.cores.iter().peekable();
        let mut suspicious: Vec<usize> = Vec::new();
        for idx in 0..self.strikes.len() {
            let (spikes, axon_events, pending) = match entries.peek() {
                Some(a) if a.core as usize == idx => {
                    let a = entries.next().expect("peeked");
                    (a.spikes, a.axon_events, a.pending_events)
                }
                _ => (0, 0, 0),
            };
            let s = &mut self.strikes[idx];

            if axon_events > 0 && spikes == 0 {
                s.silent += 1;
            } else if spikes > 0 {
                s.silent = 0;
            } // idle holds the silent streak

            if spikes > 0 && axon_events == 0 {
                s.stuck += 1;
            } else {
                s.stuck = 0;
            }

            if pending > s.last_pending {
                s.backlog_rising += 1;
                s.backlog_growth += (pending - s.last_pending) as u64;
            } else {
                s.backlog_rising = 0;
                s.backlog_growth = 0;
            }
            s.last_pending = pending;

            if self.condemned[idx] {
                continue;
            }
            let c = &self.config;
            let tripped = s.silent >= c.silent_trip
                || s.stuck >= c.stuck_trip
                || (s.backlog_rising >= c.backlog_window
                    && s.backlog_growth >= c.backlog_min_growth as u64);
            if tripped {
                suspicious.push(idx);
            }
        }

        let mut report = HealthReport::default();
        if record.tick >= self.cooldown_until {
            for idx in suspicious {
                self.condemned[idx] = true;
                report.condemned.push((idx % self.width, idx / self.width));
            }
            if !report.condemned.is_empty() {
                self.cooldown_until = record.tick + 1 + self.config.cooldown_ticks as u64;
            }
        }

        // Chip-level link-loss detector on the per-tick fault delta.
        let lost = record.faults.packets_dropped
            + record.faults.flits_dropped_overflow
            + record.faults.deliveries_failed;
        if lost >= self.config.link_loss_threshold {
            self.link_strikes += 1;
        } else {
            self.link_strikes = 0;
        }
        if self.link_strikes >= self.config.link_loss_trip {
            report.link_alarm = true;
            self.link_alarmed = true;
            self.link_strikes = 0;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brainsim_faults::FaultStats;
    use brainsim_telemetry::CoreActivity;

    fn activity(core: u32, spikes: u32, axon_events: u32, pending: u32) -> CoreActivity {
        CoreActivity {
            core,
            spikes,
            axon_events,
            synaptic_events: 0,
            pending_events: pending,
        }
    }

    fn record(tick: u64, cores: Vec<CoreActivity>) -> TickRecord {
        TickRecord {
            tick,
            cores,
            ..TickRecord::default()
        }
    }

    fn config() -> DetectorConfig {
        DetectorConfig {
            silent_trip: 3,
            stuck_trip: 3,
            backlog_window: 3,
            backlog_min_growth: 4,
            link_loss_threshold: 1,
            link_loss_trip: 2,
            cooldown_ticks: 5,
        }
    }

    #[test]
    fn silent_core_condemned_after_trip_not_before() {
        let mut m = HealthMonitor::new(config(), 2, 2);
        for t in 0..2 {
            let r = m.observe(&record(t, vec![activity(1, 0, 4, 0)]));
            assert!(r.is_healthy(), "hysteresis must hold at tick {t}");
        }
        let r = m.observe(&record(2, vec![activity(1, 0, 4, 0)]));
        assert_eq!(r.condemned, vec![(1, 0)]);
        assert_eq!(m.condemned_cells(), vec![(1, 0)]);
        // Already-condemned cells are not re-reported.
        let r = m.observe(&record(3, vec![activity(1, 0, 4, 0)]));
        assert!(r.condemned.is_empty());
    }

    #[test]
    fn a_spike_resets_the_silent_streak_but_idle_holds_it() {
        let mut m = HealthMonitor::new(config(), 2, 1);
        m.observe(&record(0, vec![activity(0, 0, 4, 0)]));
        m.observe(&record(1, vec![activity(0, 0, 4, 0)]));
        // One firing tick: innocent.
        m.observe(&record(2, vec![activity(0, 2, 4, 0)]));
        let r = m.observe(&record(3, vec![activity(0, 0, 4, 0)]));
        assert!(r.is_healthy());
        // Idle (quiescent, absent from the record) holds the streak.
        m.observe(&record(4, vec![activity(0, 0, 4, 0)]));
        m.observe(&record(5, vec![]));
        let r = m.observe(&record(6, vec![activity(0, 0, 4, 0)]));
        assert_eq!(r.condemned, vec![(0, 0)]);
    }

    #[test]
    fn stuck_firing_detected_from_spikes_without_input() {
        let mut m = HealthMonitor::new(config(), 2, 1);
        for t in 0..2 {
            assert!(m
                .observe(&record(t, vec![activity(1, 1, 0, 0)]))
                .is_healthy());
        }
        let r = m.observe(&record(2, vec![activity(1, 1, 0, 0)]));
        assert_eq!(r.condemned, vec![(1, 0)]);
    }

    #[test]
    fn backlog_growth_needs_both_streak_and_magnitude() {
        let mut m = HealthMonitor::new(config(), 1, 1);
        // Rising for 3 ticks but total growth 3 < 4: healthy.
        for (t, p) in [(0, 1), (1, 2), (2, 3)] {
            assert!(m
                .observe(&record(t, vec![activity(0, 1, 1, p)]))
                .is_healthy());
        }
        // Keep rising past the magnitude bar.
        let r = m.observe(&record(3, vec![activity(0, 1, 1, 10)]));
        assert_eq!(r.condemned, vec![(0, 0)]);
    }

    #[test]
    fn cooldown_spaces_condemnation_waves() {
        let mut m = HealthMonitor::new(config(), 2, 1);
        // Core 0 trips at tick 2; core 1 starts its streak one tick later
        // and would trip at tick 3 — inside the cooldown window.
        m.observe(&record(0, vec![activity(0, 0, 4, 0)]));
        for t in 1..3 {
            m.observe(&record(t, vec![activity(0, 0, 4, 0), activity(1, 0, 4, 0)]));
        }
        assert_eq!(m.condemned_cells(), vec![(0, 0)]);
        let r = m.observe(&record(3, vec![activity(1, 0, 4, 0)]));
        assert!(r.condemned.is_empty(), "cooldown must suppress the wave");
        // After the cooldown expires the still-suspicious core is taken.
        let mut last = HealthReport::default();
        for t in 4..10 {
            last = m.observe(&record(t, vec![activity(1, 0, 4, 0)]));
            if !last.condemned.is_empty() {
                break;
            }
        }
        assert_eq!(last.condemned, vec![(1, 0)]);
    }

    #[test]
    fn link_alarm_trips_on_consecutive_lossy_ticks() {
        let mut m = HealthMonitor::new(config(), 1, 1);
        let lossy = |t| TickRecord {
            tick: t,
            faults: FaultStats {
                packets_dropped: 2,
                ..FaultStats::default()
            },
            ..TickRecord::default()
        };
        assert!(!m.observe(&lossy(0)).link_alarm);
        assert!(m.observe(&lossy(1)).link_alarm);
        assert!(m.link_alarmed());
        // A clean tick resets the streak.
        let mut m2 = HealthMonitor::new(config(), 1, 1);
        m2.observe(&lossy(0));
        m2.observe(&TickRecord::default());
        assert!(!m2.observe(&lossy(2)).link_alarm);
    }

    #[test]
    fn reset_strikes_clears_streaks_but_keeps_condemnations() {
        let mut m = HealthMonitor::new(config(), 2, 1);
        m.observe(&record(0, vec![activity(0, 0, 4, 0)]));
        for t in 1..3 {
            m.observe(&record(t, vec![activity(0, 0, 4, 0), activity(1, 0, 4, 0)]));
        }
        assert_eq!(m.condemned_cells(), vec![(0, 0)]);
        m.reset_strikes();
        // The un-condemned core's streak restarts from zero.
        for t in 10..12 {
            assert!(m
                .observe(&record(t, vec![activity(1, 0, 4, 0)]))
                .is_healthy());
        }
        assert_eq!(m.condemned_cells(), vec![(0, 0)]);
    }
}
