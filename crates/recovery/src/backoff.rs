//! Capped exponential backoff, measured in abstract deterministic steps.

/// A bounded capped-exponential retry ladder over an abstract step unit —
/// ticks for the self-healing runner, scheduling rounds for a serving
/// runtime. Measuring backoff in simulation steps instead of wall time
/// keeps every retry schedule deterministic and replayable.
///
/// The ladder answers one question: after the `k`-th consecutive failure,
/// how long until the next attempt — or is the budget exhausted?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffLadder {
    base: u64,
    cap: u64,
    max_attempts: u32,
}

impl BackoffLadder {
    /// A ladder waiting `base × 2^(k−1)` steps after the `k`-th failure
    /// (capped at `cap`), permitting `max_attempts` attempts in total.
    /// Degenerate inputs clamp: `base ≥ 1`, `cap ≥ base`,
    /// `max_attempts ≥ 1`.
    pub fn new(base: u64, cap: u64, max_attempts: u32) -> BackoffLadder {
        let base = base.max(1);
        BackoffLadder {
            base,
            cap: cap.max(base),
            max_attempts: max_attempts.max(1),
        }
    }

    /// Total attempts permitted before the ladder is exhausted.
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Steps to wait after the `failed`-th consecutive failure (1-based):
    /// `Some(base × 2^(failed−1))`, saturating and capped — or `None` when
    /// the attempt budget is exhausted and the caller must escalate
    /// (degrade in place, declare the session failed).
    pub fn delay_after(&self, failed: u32) -> Option<u64> {
        if failed >= self.max_attempts {
            return None;
        }
        let shift = failed.saturating_sub(1).min(63);
        Some(self.base.saturating_mul(1u64 << shift).min(self.cap))
    }
}

impl Default for BackoffLadder {
    /// 3 attempts, base 8 steps, cap 64 — the self-healing runner's
    /// historical schedule.
    fn default() -> Self {
        BackoffLadder::new(8, 64, 3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_double_up_to_the_cap() {
        let l = BackoffLadder::new(8, 20, 5);
        assert_eq!(l.delay_after(1), Some(8));
        assert_eq!(l.delay_after(2), Some(16));
        assert_eq!(l.delay_after(3), Some(20)); // capped
        assert_eq!(l.delay_after(4), Some(20));
        assert_eq!(l.delay_after(5), None); // budget exhausted
        assert_eq!(l.delay_after(99), None);
    }

    #[test]
    fn degenerate_inputs_clamp() {
        let l = BackoffLadder::new(0, 0, 0);
        assert_eq!(l.max_attempts(), 1);
        assert_eq!(l.delay_after(1), None); // one attempt, no retry
                                            // Huge failure counts must not overflow the shift.
        let l = BackoffLadder::new(u64::MAX, u64::MAX, u32::MAX);
        assert_eq!(l.delay_after(70), Some(u64::MAX));
    }
}
