//! # brainsim-recovery
//!
//! The self-healing runtime: closes the defect-tolerance loop at run
//! time. The TrueNorth paper treats defective cores as a compile-time
//! yield problem (place around a defect map); this crate turns the same
//! machinery into graceful *recovery* — detect a core going bad from
//! telemetry alone, re-place the logical network around it, and hot-
//! migrate the running chip's state onto the repaired layout without
//! losing a tick.
//!
//! ## The loop
//!
//! 1. **Detect** — [`HealthMonitor`] consumes the chip's per-tick
//!    [`brainsim_telemetry::TickRecord`] stream (no oracle access to the
//!    fault plan) and condemns cells via four symptomatic detectors —
//!    silent-core, stuck-firing, backlog-growth and chip-level link-loss
//!    — each with hysteresis so transient blips don't trigger remaps.
//! 2. **Replan** — [`brainsim_compiler::repair`] re-enters placement with
//!    the condemned cells appended to the defective set, keeps every
//!    healthy core where it is, and diffs old-vs-new into a minimal
//!    migration set.
//! 3. **Migrate** — [`hot_migrate`] checkpoints the chip, grafts each
//!    migrated core's dynamic state (potentials, scheduler ring, LFSR,
//!    statistics) onto its new cell, re-arms the retained fault plan, and
//!    resumes via the validating [`brainsim_chip::Chip::restore`] path.
//!
//! [`SelfHealingRunner`] drives the loop per tick with a typed
//! [`RecoveryError`] ladder, bounded retry with capped exponential
//! backoff (measured in ticks, so behaviour is deterministic), and a
//! last-resort degrade-in-place fallback: recovery can never crash the
//! run. On a healthy chip the whole loop is a proven no-op.
//!
//! Determinism carries through recovery: given the same fault schedule
//! and stimulus, the detect → replan → migrate sequence is bit-identical
//! across thread counts and schedulers (`tests/recovery.rs` proves it
//! differentially).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod backoff;
mod error;
mod migrate;
mod monitor;
mod runner;

pub use backoff::BackoffLadder;
pub use error::RecoveryError;
pub use migrate::hot_migrate;
pub use monitor::{DetectorConfig, HealthMonitor, HealthReport};
pub use runner::{RecoveryEvent, RecoveryPolicy, RecoveryStats, SelfHealingRunner};
