//! Checkpointed hot migration: graft a running chip's dynamic state onto
//! a repaired placement and resume, mid-run, without losing a tick.
//!
//! The mechanism reuses the checkpoint/restore machinery end to end. The
//! running chip is checkpointed (any tick boundary is crash-consistent);
//! the repaired chip — freshly built by [`brainsim_compiler::repair`],
//! with the retained fault plan burned in so every cell carries its
//! correct structural damage — is checkpointed too; then a hybrid
//! snapshot is assembled per cell and validated by [`Chip::restore`]:
//!
//! * **Unmoved cores** keep their old state verbatim, except that spike
//!   destinations are taken from the repaired emission (a neighbour may
//!   have moved) and the quiescence flag is dropped when they did.
//! * **Migrated cores** take the repaired cell's static image (wiring,
//!   crossbar and neuron-level damage of the *new* cell) and graft the
//!   old dynamic state on top: membrane potentials, the delay-scheduler
//!   ring (slot indexing is absolute in the tick, and the core keeps its
//!   clock, so the ring copies verbatim), the LFSR state and the
//!   statistics — fault counters re-based from the condemned cell's
//!   structural burn to the new cell's, and the destination cell's own
//!   history merged in so the chip-wide census is preserved exactly.
//! * **Vacated cells** take the repaired cell's (empty) image.
//!
//! In-flight spikes need no special channel: between ticks every pending
//! event lives in some core's scheduler ring, so the graft carries them.

use brainsim_chip::{Chip, Snapshot};
use brainsim_compiler::{CoreMove, RepairedNetwork};
use brainsim_core::CoreState;

use crate::error::RecoveryError;

/// Grafts `old`'s dynamic state onto the repaired network's chip and
/// swaps the result in, leaving `repaired.compiled` running at `old`'s
/// tick with every healthy core's state carried over. `old` is the chip
/// being replaced (read-only: on error it keeps running untouched).
///
/// # Errors
///
/// [`RecoveryError::GridChanged`] when the repaired grid differs,
/// [`RecoveryError::Restore`] when the grafted snapshot fails validation,
/// [`RecoveryError::Migrate`] for internal assembly failures. The
/// repaired network is consumed either way; the caller retries from a
/// fresh [`brainsim_compiler::repair`].
pub fn hot_migrate(old: &Chip, repaired: &mut RepairedNetwork) -> Result<(), RecoveryError> {
    let old_dims = (old.config().width, old.config().height);
    let new_cfg = *repaired.compiled.chip().config();
    if (new_cfg.width, new_cfg.height) != old_dims {
        return Err(RecoveryError::GridChanged {
            old: old_dims,
            new: (new_cfg.width, new_cfg.height),
        });
    }

    let snapshot = old.checkpoint();
    // Burn the retained plan into the fresh chip: each cell — including
    // every migration destination — receives exactly the structural damage
    // the plan assigns to *that* cell. (The fresh chip has never had a
    // plan applied, so this cannot compound.)
    if let Some(plan) = snapshot.plan {
        repaired.compiled.chip_mut().set_fault_plan(&plan);
    }
    let fresh = repaired.compiled.chip().checkpoint();
    if fresh.cores.len() != snapshot.cores.len() {
        return Err(RecoveryError::Migrate(format!(
            "repaired chip has {} cores, expected {}",
            fresh.cores.len(),
            snapshot.cores.len()
        )));
    }

    let width = new_cfg.width;
    let flat = |(x, y): (usize, usize)| y * width + x;
    let mut source_of: Vec<Option<usize>> = vec![None; fresh.cores.len()];
    let mut vacated: Vec<bool> = vec![false; fresh.cores.len()];
    for &CoreMove { from, to, .. } in &repaired.moves {
        source_of[flat(to)] = Some(flat(from));
        vacated[flat(from)] = true;
    }

    let cores: Vec<CoreState> = (0..fresh.cores.len())
        .map(|idx| {
            let fresh_state = &fresh.cores[idx];
            if let Some(src) = source_of[idx] {
                graft(
                    fresh_state,
                    &snapshot.cores[src],
                    &snapshot.cores[idx],
                    snapshot.now,
                )
            } else if vacated[idx] {
                let mut state = fresh_state.clone();
                state.now = snapshot.now;
                state
            } else {
                let mut state = snapshot.cores[idx].clone();
                if state.destinations != fresh_state.destinations {
                    state.destinations = fresh_state.destinations.clone();
                    // A re-pointed core must be re-evaluated: its proven
                    // quiescence predates the rewire.
                    state.settled = false;
                }
                state
            }
        })
        .collect();

    let assembled = Snapshot {
        config: new_cfg,
        now: snapshot.now,
        hops: snapshot.hops,
        link_crossings: snapshot.link_crossings,
        outputs_total: snapshot.outputs_total,
        fault_stats: snapshot.fault_stats,
        cores,
        plan: snapshot.plan,
        telemetry: snapshot.telemetry,
        noc: snapshot.noc,
        app: snapshot.app,
    };
    let chip = Chip::restore(assembled)?;
    repaired
        .compiled
        .replace_chip(chip)
        .map_err(|e| RecoveryError::Migrate(e.to_string()))?;
    Ok(())
}

/// A migrated core's state: the new cell's static image with the old
/// cell's dynamic state grafted on. `old_dest` is the destination cell's
/// state in the *running* chip (the spare it used to be).
fn graft(fresh: &CoreState, old: &CoreState, old_dest: &CoreState, now: u64) -> CoreState {
    let mut state = fresh.clone();
    state.potentials = old.potentials.clone();
    state.scheduler_slots = old.scheduler_slots.clone();
    state.rng_state = old.rng_state;
    state.now = now;
    // Chip-wide accounting must survive migration (the energy model reads
    // the census cumulatively): the incoming core's history — with its
    // fault counters re-based off the condemned cell's structural burn —
    // merges with everything that already happened at the destination
    // cell. The destination's history already contains its own structural
    // burn, so the fresh chip's burn counters are NOT added again.
    let old_structural = old
        .faults
        .as_ref()
        .map(|f| f.structural)
        .unwrap_or_default();
    let mut stats = old.stats;
    stats.faults = stats.faults.saturating_sub(&old_structural);
    stats.merge(&old_dest.stats);
    // `ticks` is a high-water mark (census takes the max across cores),
    // not additive work: two 50-tick histories at one cell are still a
    // 50-tick run.
    stats.ticks = old.stats.ticks.max(old_dest.stats.ticks);
    state.stats = stats;
    // Never resume a migrated core as provably quiescent.
    state.settled = false;
    state
}

#[cfg(test)]
mod tests {
    use super::*;

    use brainsim_chip::{ChipBuilder, ChipConfig};
    use brainsim_compiler::RepairedNetwork;

    fn tiny_chip(width: usize, height: usize) -> Chip {
        ChipBuilder::new(ChipConfig {
            width,
            height,
            core_axons: 4,
            core_neurons: 4,
            ..ChipConfig::default()
        })
        .build()
        .expect("build")
    }

    #[test]
    fn grid_change_is_rejected_before_any_state_moves() {
        let old = tiny_chip(2, 2);
        let mut repaired = RepairedNetwork {
            compiled: brainsim_compiler::compile(
                &trivial_net(),
                &brainsim_compiler::CompileOptions {
                    core_axons: 4,
                    core_neurons: 4,
                    relay_reserve: 1,
                    grid: Some((1, 1)),
                    ..Default::default()
                },
            )
            .expect("compile"),
            moves: Vec::new(),
        };
        match hot_migrate(&old, &mut repaired) {
            Err(RecoveryError::GridChanged { old, new }) => {
                assert_eq!(old, (2, 2));
                assert_eq!(new, (1, 1));
            }
            other => panic!("expected GridChanged, got {other:?}"),
        }
    }

    fn trivial_net() -> brainsim_corelet::LogicalNetwork {
        let mut c = brainsim_corelet::Corelet::new("t", 1);
        let n = c.add_neuron(
            brainsim_neuron::NeuronConfig::builder()
                .threshold(1)
                .build()
                .expect("config"),
        );
        c.connect(brainsim_corelet::NodeRef::Input(0), n, 1, 1)
            .expect("connect");
        c.mark_output(n).expect("output");
        c.into_network()
    }
}
