//! The closed loop: tick → observe → condemn → replan → migrate → resume.

use std::path::PathBuf;

use brainsim_chip::Chip;
use brainsim_compiler::{compile, repair, CompileError, CompileOptions, CompiledNetwork, CoreMove};
use brainsim_corelet::LogicalNetwork;
use brainsim_faults::FaultPlan;
use brainsim_snapshot::{CheckpointPolicy, RetryPolicy};
use brainsim_telemetry::TelemetryConfig;

use crate::backoff::BackoffLadder;
use crate::error::RecoveryError;
use crate::migrate::hot_migrate;
use crate::monitor::{DetectorConfig, HealthMonitor};

/// How aggressively the runner recovers and when it gives up.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Detector thresholds for the health monitor.
    pub detectors: DetectorConfig,
    /// Failed recovery attempts tolerated before degrading in place.
    pub max_attempts: u32,
    /// Ticks waited after the first failed attempt before the next one.
    pub backoff_base_ticks: u64,
    /// Upper bound on the per-attempt backoff (capped exponential).
    pub backoff_cap_ticks: u64,
    /// When set, every migration first persists the pre-migration
    /// checkpoint here (with [`RetryPolicy`]-guarded writes), so a crash
    /// mid-migration can resume from the last consistent state.
    pub checkpoint_dir: Option<PathBuf>,
    /// Retry budget for the persisted checkpoint write.
    pub checkpoint_retry: RetryPolicy,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            detectors: DetectorConfig::default(),
            max_attempts: 3,
            backoff_base_ticks: 8,
            backoff_cap_ticks: 64,
            checkpoint_dir: None,
            checkpoint_retry: RetryPolicy::default(),
        }
    }
}

/// One entry of the runner's recovery journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// The monitor condemned cells at `tick`.
    Condemned {
        /// Tick of the observation.
        tick: u64,
        /// The newly condemned cells.
        cells: Vec<(usize, usize)>,
    },
    /// A replan + hot migration succeeded.
    Migrated {
        /// Tick the migration completed at.
        tick: u64,
        /// The cores that moved.
        moves: Vec<CoreMove>,
    },
    /// One recovery attempt failed; another is scheduled.
    AttemptFailed {
        /// Tick of the failure.
        tick: u64,
        /// Rendered [`RecoveryError`].
        error: String,
        /// Tick at which the next attempt may run.
        retry_at: u64,
    },
    /// The retry budget is exhausted: the run continues on the damaged
    /// layout and no further migrations are attempted.
    DegradedInPlace {
        /// Tick recovery was abandoned at.
        tick: u64,
        /// Rendered final [`RecoveryError`].
        error: String,
    },
}

/// Cumulative recovery accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Cells condemned by the monitor.
    pub cells_condemned: u64,
    /// Successful hot migrations.
    pub migrations: u64,
    /// Cores physically moved across all migrations.
    pub cores_moved: u64,
    /// Failed recovery attempts.
    pub failed_attempts: u64,
    /// Link-loss alarms raised.
    pub link_alarms: u64,
}

/// A compiled network wrapped in the self-healing loop.
///
/// Each [`SelfHealingRunner::step`] ticks the chip, feeds the tick's
/// telemetry record to the [`HealthMonitor`], and — when cells stand
/// condemned — re-places the retained logical network around them and
/// hot-migrates. Failed attempts back off exponentially (in ticks, so the
/// behaviour is deterministic) and, once the budget is exhausted, the
/// runner degrades in place: the run continues on the damaged layout and
/// recovery never crashes it.
///
/// On a healthy chip the loop is a proven no-op: the monitor sees nothing,
/// no replan ever runs, and the tick stream is bit-identical to an
/// unwrapped [`CompiledNetwork`] with telemetry enabled.
#[derive(Debug)]
pub struct SelfHealingRunner {
    net: LogicalNetwork,
    options: CompileOptions,
    compiled: CompiledNetwork,
    monitor: HealthMonitor,
    policy: RecoveryPolicy,
    pending: Vec<(usize, usize)>,
    failed_attempts: u32,
    next_attempt_at: u64,
    degraded: bool,
    stats: RecoveryStats,
    events: Vec<RecoveryEvent>,
}

impl SelfHealingRunner {
    /// Compiles `net` and wraps it in the recovery loop. Telemetry with
    /// per-core detail is enabled on the chip — the monitor needs it.
    ///
    /// # Errors
    ///
    /// Any [`CompileError`] the initial compilation raises.
    pub fn new(
        net: LogicalNetwork,
        options: CompileOptions,
        policy: RecoveryPolicy,
    ) -> Result<SelfHealingRunner, CompileError> {
        let mut compiled = compile(&net, &options)?;
        compiled.chip_mut().enable_telemetry(TelemetryConfig {
            capacity: Some(64),
            core_detail: true,
        });
        let (w, h) = compiled.network_map().grid;
        let monitor = HealthMonitor::new(policy.detectors, w, h);
        Ok(SelfHealingRunner {
            net,
            options,
            compiled,
            monitor,
            policy,
            pending: Vec::new(),
            failed_attempts: 0,
            next_attempt_at: 0,
            degraded: false,
            stats: RecoveryStats::default(),
            events: Vec::new(),
        })
    }

    /// The wrapped network.
    pub fn compiled(&self) -> &CompiledNetwork {
        &self.compiled
    }

    /// The underlying chip.
    pub fn chip(&self) -> &Chip {
        self.compiled.chip()
    }

    /// The health monitor (for inspecting condemned cells / thresholds).
    pub fn monitor(&self) -> &HealthMonitor {
        &self.monitor
    }

    /// Cumulative recovery accounting.
    pub fn stats(&self) -> RecoveryStats {
        self.stats
    }

    /// The recovery journal, oldest first.
    pub fn events(&self) -> &[RecoveryEvent] {
        &self.events
    }

    /// True once the runner has given up migrating and runs degraded.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Arms a fault plan on the running chip and retains it so migrated
    /// cells inherit their correct structural damage. Legal at any tick
    /// boundary; apply any given plan at most once (see
    /// [`Chip::set_fault_plan`]).
    pub fn arm_fault_plan(&mut self, plan: &FaultPlan) {
        self.compiled.set_fault_plan(plan);
    }

    /// Advances one tick with `stimulus` input ports spiking, runs the
    /// detectors on the tick's telemetry, and — if cells stand condemned
    /// and no backoff is pending — attempts a recovery. Returns which
    /// output ports fired.
    ///
    /// # Panics
    ///
    /// Panics if `stimulus` names a non-existent input port (matching
    /// [`CompiledNetwork::run`]).
    pub fn step(&mut self, stimulus: &[usize]) -> Vec<bool> {
        let t = self.compiled.chip().now();
        for &port in stimulus {
            self.compiled
                .inject(port, t)
                .expect("stimulus named a bad port");
        }
        let fired = self.compiled.tick();

        let report = self
            .compiled
            .chip()
            .telemetry()
            .and_then(|log| log.latest())
            .map(|record| self.monitor.observe(record))
            .unwrap_or_default();
        let now = self.compiled.chip().now();
        if report.link_alarm {
            self.stats.link_alarms += 1;
        }
        if !report.condemned.is_empty() {
            self.stats.cells_condemned += report.condemned.len() as u64;
            self.events.push(RecoveryEvent::Condemned {
                tick: now,
                cells: report.condemned.clone(),
            });
            self.pending.extend(report.condemned);
        }

        if !self.pending.is_empty() && !self.degraded && now >= self.next_attempt_at {
            self.attempt_recovery(now);
        }
        fired
    }

    /// Runs `ticks` steps; `stimulus(t)` lists the input ports spiking at
    /// tick `t`. Returns the output raster, one `Vec<bool>` per tick
    /// (matching [`CompiledNetwork::run`]).
    pub fn run<F>(&mut self, ticks: u64, mut stimulus: F) -> Vec<Vec<bool>>
    where
        F: FnMut(u64) -> Vec<usize>,
    {
        let mut raster = Vec::with_capacity(ticks as usize);
        for _ in 0..ticks {
            let t = self.compiled.chip().now();
            raster.push(self.step(&stimulus(t)));
        }
        raster
    }

    fn attempt_recovery(&mut self, now: u64) {
        match self.try_recover(now) {
            Ok(moves) => {
                self.stats.migrations += 1;
                self.stats.cores_moved += moves.len() as u64;
                self.events
                    .push(RecoveryEvent::Migrated { tick: now, moves });
                self.pending.clear();
                self.failed_attempts = 0;
                self.next_attempt_at = 0;
                // The layout changed discontinuously: stale streaks must
                // not condemn the repaired placement.
                self.monitor.reset_strikes();
            }
            Err(e) => {
                self.failed_attempts += 1;
                self.stats.failed_attempts += 1;
                let ladder = BackoffLadder::new(
                    self.policy.backoff_base_ticks,
                    self.policy.backoff_cap_ticks,
                    self.policy.max_attempts,
                );
                match ladder.delay_after(self.failed_attempts) {
                    None => {
                        self.degraded = true;
                        let err = RecoveryError::Exhausted {
                            attempts: self.failed_attempts,
                        };
                        self.events.push(RecoveryEvent::DegradedInPlace {
                            tick: now,
                            error: format!("{err}: last error: {e}"),
                        });
                    }
                    Some(backoff) => {
                        self.next_attempt_at = now + backoff;
                        self.events.push(RecoveryEvent::AttemptFailed {
                            tick: now,
                            error: e.to_string(),
                            retry_at: self.next_attempt_at,
                        });
                    }
                }
            }
        }
    }

    fn try_recover(&mut self, now: u64) -> Result<Vec<CoreMove>, RecoveryError> {
        let map = self.compiled.network_map().clone();
        let mut repaired = repair(&self.net, &self.options, &map, &self.pending)?;

        if let Some(dir) = &self.policy.checkpoint_dir {
            let bytes = self.compiled.chip().checkpoint().to_bytes();
            CheckpointPolicy::new(1, 2).save_with_retry(
                dir,
                now,
                &bytes,
                &self.policy.checkpoint_retry,
            )?;
        }

        hot_migrate(self.compiled.chip(), &mut repaired)?;
        self.compiled = repaired.compiled;
        Ok(repaired.moves)
    }
}
