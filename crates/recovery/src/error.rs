//! The typed failure ladder of the self-healing runtime.

use std::fmt;

use brainsim_compiler::CompileError;
use brainsim_snapshot::{RestoreError, SaveError};

/// Everything that can go wrong between condemning a cell and resuming on
/// the repaired chip. Each rung maps to one stage of the recovery
/// pipeline; the runner retries the whole attempt with capped exponential
/// backoff and, when the budget is exhausted, degrades in place — recovery
/// itself never aborts the run.
#[derive(Debug)]
pub enum RecoveryError {
    /// The re-placement around the condemned cells failed — most commonly
    /// [`CompileError::GridTooSmall`] when no healthy spare cell is left.
    Replan(CompileError),
    /// The repaired chip came back with different grid dimensions, so the
    /// old chip's checkpoint cannot be mapped onto it (a bug in the caller
    /// if it happens: [`brainsim_compiler::repair`] pins the grid).
    GridChanged {
        /// Dimensions of the running chip.
        old: (usize, usize),
        /// Dimensions of the repaired chip.
        new: (usize, usize),
    },
    /// Persisting the pre-migration checkpoint failed after every retry.
    Checkpoint(SaveError),
    /// The grafted snapshot failed chip restore validation.
    Restore(RestoreError),
    /// The state graft or chip swap failed for another reason.
    Migrate(String),
    /// The retry budget is exhausted; the runner has degraded in place and
    /// will not attempt further migrations.
    Exhausted {
        /// Attempts made before giving up.
        attempts: u32,
    },
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryError::Replan(e) => write!(f, "re-placement failed: {e}"),
            RecoveryError::GridChanged { old, new } => write!(
                f,
                "repaired chip is {}x{} but the running chip is {}x{}",
                new.0, new.1, old.0, old.1
            ),
            RecoveryError::Checkpoint(e) => write!(f, "pre-migration checkpoint failed: {e}"),
            RecoveryError::Restore(e) => write!(f, "migrated state failed restore: {e}"),
            RecoveryError::Migrate(msg) => write!(f, "hot migration failed: {msg}"),
            RecoveryError::Exhausted { attempts } => {
                write!(f, "recovery abandoned after {attempts} failed attempts")
            }
        }
    }
}

impl std::error::Error for RecoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoveryError::Replan(e) => Some(e),
            RecoveryError::Checkpoint(e) => Some(e),
            RecoveryError::Restore(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CompileError> for RecoveryError {
    fn from(e: CompileError) -> Self {
        RecoveryError::Replan(e)
    }
}

impl From<RestoreError> for RecoveryError {
    fn from(e: RestoreError) -> Self {
        RecoveryError::Restore(e)
    }
}

impl From<SaveError> for RecoveryError {
    fn from(e: SaveError) -> Self {
        RecoveryError::Checkpoint(e)
    }
}
